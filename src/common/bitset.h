#pragma once

// Packed per-element bit flags. Bitplane coders track per-coefficient state
// (signs, significance marks) for multi-million-element grids; a
// byte-per-flag vector wastes 8x the cache footprint of a packed bitset.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sperr {

/// Fixed-size packed bitset with word access, sized at runtime.
class PackedBits {
 public:
  PackedBits() = default;
  explicit PackedBits(size_t n) { assign(n); }

  /// Resize to `n` bits, all cleared.
  void assign(size_t n) {
    n_ = n;
    words_.assign((n + 63) / 64, 0);
  }

  /// Resize to `n` bits WITHOUT clearing: existing word contents (and, on
  /// growth, indeterminate words) remain. For write-everything producers —
  /// SPECK's significance sweeps fill every word before any read — this
  /// skips assign()'s memset on the hot path.
  void resize_for_overwrite(size_t n) {
    n_ = n;
    words_.resize((n + 63) / 64);
  }

  [[nodiscard]] size_t size() const { return n_; }

  [[nodiscard]] bool get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(size_t i) { words_[i >> 6] |= uint64_t(1) << (i & 63); }
  void set(size_t i, bool v) {
    const uint64_t mask = uint64_t(1) << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  /// Number of set bits.
  [[nodiscard]] size_t count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += size_t(std::popcount(w));
    return c;
  }

  // 64-wide word access for batch consumers: bit i of the set lives at bit
  // (i & 63) of word i >> 6. Bits of the last word at or above size() are
  // not meaningful unless the producer wrote them zero.
  [[nodiscard]] size_t word_count() const { return words_.size(); }
  [[nodiscard]] uint64_t word(size_t w) const { return words_[w]; }
  [[nodiscard]] uint64_t* word_data() { return words_.data(); }
  [[nodiscard]] const uint64_t* word_data() const { return words_.data(); }

  /// Index of the first set bit at or after `from`, or size() when there is
  /// none. Word-at-a-time (countr_zero), so scanning a sparse set costs
  /// ~size()/64 loads — the zero-run primitive of SPECK's sorting sweeps.
  [[nodiscard]] size_t find_next(size_t from) const {
    if (from >= n_) return n_;
    size_t w = from >> 6;
    uint64_t bits = words_[w] & (~uint64_t(0) << (from & 63));
    while (bits == 0) {
      if (++w == words_.size()) return n_;
      bits = words_[w];
    }
    const size_t i = (w << 6) + size_t(std::countr_zero(bits));
    return i < n_ ? i : n_;
  }

 private:
  std::vector<uint64_t> words_;
  size_t n_ = 0;
};

}  // namespace sperr
