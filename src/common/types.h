#pragma once

// Basic geometric types shared by every module: 3-D extents, strides, and
// index arithmetic. 1-D and 2-D data are represented with trailing extents
// equal to 1, so the whole code base uses a single addressing convention:
// linear index = x + nx * (y + ny * z), i.e. x is the fastest-varying axis.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sperr {

/// Extents of a (possibly degenerate) 3-D grid. x varies fastest in memory.
struct Dims {
  size_t x = 1;
  size_t y = 1;
  size_t z = 1;

  constexpr Dims() = default;
  constexpr Dims(size_t nx, size_t ny = 1, size_t nz = 1) : x(nx), y(ny), z(nz) {}

  [[nodiscard]] constexpr size_t total() const { return x * y * z; }

  /// Number of non-degenerate axes (a 2-D slice has rank 2, a scalar rank 0).
  [[nodiscard]] constexpr int rank() const {
    return int(x > 1) + int(y > 1) + int(z > 1);
  }

  [[nodiscard]] constexpr size_t index(size_t ix, size_t iy, size_t iz) const {
    return ix + x * (iy + y * iz);
  }

  constexpr bool operator==(const Dims&) const = default;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(x) + "x" + std::to_string(y) + "x" + std::to_string(z);
  }
};

/// Implementation limits used to validate untrusted stream headers: each
/// axis must fit in 21 bits (so the extent product cannot overflow uint64)
/// and the total element count is capped. Real volumes sit far below both.
inline constexpr size_t kMaxAxisExtent = size_t(1) << 21;
inline constexpr size_t kMaxVolumeElements = size_t(1) << 42;

/// True when `d` is a plausible volume (also rejects empty grids).
[[nodiscard]] constexpr bool plausible_dims(const Dims& d) {
  return d.x >= 1 && d.y >= 1 && d.z >= 1 && d.x <= kMaxAxisExtent &&
         d.y <= kMaxAxisExtent && d.z <= kMaxAxisExtent &&
         d.total() <= kMaxVolumeElements;
}

/// Result status for fallible codec operations. The library throws only on
/// programmer error (contract violations); data-dependent failures (corrupt
/// stream, budget too small) are reported through Status.
enum class Status {
  ok,
  truncated_stream,  ///< bitstream ended before decoding finished (valid for embedded streams)
  corrupt_stream,    ///< header/magic/version mismatch or inconsistent payload
  invalid_argument,  ///< caller passed an unusable parameter (e.g. tolerance <= 0)
  corrupt_block,     ///< a lossless block failed its checksum; the block index is reported
  corrupt_chunk,     ///< a container chunk failed its checksum; the chunk index is reported
  resource_exhausted,  ///< header-declared output/working set exceeds the decoder's
                       ///< configured ResourceLimits (common/resource.h) — the bytes
                       ///< may be well-formed, but decoding them is not affordable
};

[[nodiscard]] constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::ok: return "ok";
    case Status::truncated_stream: return "truncated_stream";
    case Status::corrupt_stream: return "corrupt_stream";
    case Status::invalid_argument: return "invalid_argument";
    case Status::corrupt_block: return "corrupt_block";
    case Status::corrupt_chunk: return "corrupt_chunk";
    case Status::resource_exhausted: return "resource_exhausted";
  }
  return "unknown";
}

}  // namespace sperr
