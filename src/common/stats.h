#pragma once

// Streaming summary statistics over large fields (mean, variance, range)
// computed in one pass with a numerically stable (Welford) update. Used by
// the tolerance-from-idx translation (Table I) and the quality metrics.

#include <cstddef>

namespace sperr {

struct FieldStats {
  size_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  ///< sum of squared deviations (Welford accumulator)
  double min = 0.0;
  double max = 0.0;

  void add(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    const double delta = v - mean;
    mean += delta / double(count);
    m2 += delta * (v - mean);
  }

  [[nodiscard]] double variance() const { return count ? m2 / double(count) : 0.0; }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double range() const { return max - min; }
};

/// One-pass stats over a contiguous array.
template <class T>
FieldStats compute_stats(const T* data, size_t n) {
  FieldStats s;
  for (size_t i = 0; i < n; ++i) s.add(double(data[i]));
  return s;
}

}  // namespace sperr
