#include "common/faultinject.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/rng.h"

namespace sperr::faultinject {

namespace {

/// Indices of slices with at least one byte inside the buffer.
std::vector<uint32_t> usable_slices(const std::vector<ByteRange>& slices,
                                    size_t buffer_size) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < slices.size(); ++i)
    if (slices[i].length > 0 && slices[i].offset < buffer_size) out.push_back(uint32_t(i));
  return out;
}

/// Bytes of slice `r` that actually lie inside the buffer.
size_t avail(const ByteRange& r, size_t buffer_size) {
  return std::min(r.length, buffer_size - std::min(r.offset, buffer_size));
}

}  // namespace

std::string to_string(const Fault& f) {
  char buf[96];
  switch (f.kind) {
    case FaultKind::bit_flip:
      std::snprintf(buf, sizeof buf, "bit_flip slice %u +%zu mask 0x%02x", f.target,
                    f.offset, f.mask);
      break;
    case FaultKind::byte_burst:
      std::snprintf(buf, sizeof buf, "byte_burst slice %u +%zu len %zu", f.target,
                    f.offset, f.length);
      break;
    case FaultKind::zero_range:
      std::snprintf(buf, sizeof buf, "zero_range slice %u +%zu len %zu", f.target,
                    f.offset, f.length);
      break;
    case FaultKind::truncate_tail:
      std::snprintf(buf, sizeof buf, "truncate_tail len %zu", f.length);
      break;
    case FaultKind::duplicate_slice:
      std::snprintf(buf, sizeof buf, "duplicate_slice %u", f.target);
      break;
    case FaultKind::swap_slices:
      std::snprintf(buf, sizeof buf, "swap_slices %u <-> %u", f.target, f.other);
      break;
  }
  return buf;
}

std::vector<Fault> plan(uint64_t seed, size_t count,
                        const std::vector<ByteRange>& slices, size_t buffer_size) {
  std::vector<Fault> out;
  const auto targets = usable_slices(slices, buffer_size);
  if (targets.empty() || count == 0) return out;
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);

  // Decide up front whether the plan ends with a structural fault; roughly
  // one plan in three does, so content-only corruption stays the common case.
  const bool structural = count > 0 && rng.below(3) == 0;
  const size_t content = structural ? count - 1 : count;

  for (size_t i = 0; i < content; ++i) {
    Fault f;
    const uint32_t t = targets[rng.below(targets.size())];
    const size_t n = avail(slices[t], buffer_size);
    f.target = t;
    switch (rng.below(4)) {
      case 0:
      case 1:  // bit flips twice as likely: the most common real-world fault
        f.kind = FaultKind::bit_flip;
        f.offset = rng.below(n);
        f.mask = uint8_t(1u << rng.below(8));
        break;
      case 2:
        f.kind = FaultKind::byte_burst;
        f.offset = rng.below(n);
        f.length = 1 + rng.below(std::min<size_t>(n - f.offset, 64));
        f.mask = uint8_t(rng.next() | 1);
        break;
      default:
        f.kind = FaultKind::zero_range;
        f.offset = rng.below(n);
        f.length = 1 + rng.below(std::min<size_t>(n - f.offset, 64));
        break;
    }
    out.push_back(f);
  }

  if (structural) {
    Fault f;
    switch (rng.below(3)) {
      case 0: {
        f.kind = FaultKind::truncate_tail;
        // Cut somewhere inside the last usable slice so the damage is
        // attributable (cutting the whole buffer tests nothing per-slice).
        const ByteRange& last = slices[targets.back()];
        const size_t max_cut = buffer_size - last.offset;
        f.length = 1 + rng.below(std::max<size_t>(max_cut, 1));
        break;
      }
      case 1:
        f.kind = FaultKind::duplicate_slice;
        f.target = targets[rng.below(targets.size())];
        break;
      default:
        f.kind = FaultKind::swap_slices;
        f.target = targets[rng.below(targets.size())];
        f.other = targets[rng.below(targets.size())];
        if (f.other == f.target && targets.size() > 1)
          f.other = targets[(std::find(targets.begin(), targets.end(), f.target) -
                             targets.begin() + 1) %
                            targets.size()];
        break;
    }
    out.push_back(f);
  }
  return out;
}

std::vector<uint8_t> apply(const uint8_t* data, size_t size,
                           const std::vector<ByteRange>& slices,
                           const std::vector<Fault>& faults) {
  std::vector<uint8_t> out(data, data + size);
  for (const Fault& f : faults) {
    switch (f.kind) {
      case FaultKind::bit_flip: {
        if (f.target >= slices.size()) break;
        const size_t pos = slices[f.target].offset + f.offset;
        if (pos < out.size()) out[pos] ^= f.mask;
        break;
      }
      case FaultKind::byte_burst: {
        if (f.target >= slices.size()) break;
        Rng noise(uint64_t(f.mask) * 0x2545f4914f6cdd1dULL + f.offset);
        for (size_t i = 0; i < f.length; ++i) {
          const size_t pos = slices[f.target].offset + f.offset + i;
          if (pos < out.size()) out[pos] = uint8_t(noise.next());
        }
        break;
      }
      case FaultKind::zero_range: {
        if (f.target >= slices.size()) break;
        for (size_t i = 0; i < f.length; ++i) {
          const size_t pos = slices[f.target].offset + f.offset + i;
          if (pos < out.size()) out[pos] = 0;
        }
        break;
      }
      case FaultKind::truncate_tail:
        out.resize(out.size() - std::min(f.length, out.size()));
        break;
      case FaultKind::duplicate_slice: {
        if (f.target >= slices.size()) break;
        const ByteRange& r = slices[f.target];
        if (r.offset >= out.size()) break;
        const size_t n = std::min(r.length, out.size() - r.offset);
        const std::vector<uint8_t> copy(out.begin() + std::ptrdiff_t(r.offset),
                                        out.begin() + std::ptrdiff_t(r.offset + n));
        out.insert(out.begin() + std::ptrdiff_t(r.offset + n), copy.begin(),
                   copy.end());
        break;
      }
      case FaultKind::swap_slices: {
        if (f.target >= slices.size() || f.other >= slices.size()) break;
        ByteRange a = slices[f.target], b = slices[f.other];
        if (a.offset > b.offset) std::swap(a, b);
        if (b.offset + b.length > out.size() || a.offset + a.length > b.offset) break;
        if (a.length == b.length) {
          std::swap_ranges(out.begin() + std::ptrdiff_t(a.offset),
                           out.begin() + std::ptrdiff_t(a.offset + a.length),
                           out.begin() + std::ptrdiff_t(b.offset));
        } else {
          // Unequal lengths: rebuild [a.begin, b.end) as b ‖ middle ‖ a.
          std::vector<uint8_t> span;
          span.reserve(b.offset + b.length - a.offset);
          span.insert(span.end(), out.begin() + std::ptrdiff_t(b.offset),
                      out.begin() + std::ptrdiff_t(b.offset + b.length));
          span.insert(span.end(), out.begin() + std::ptrdiff_t(a.offset + a.length),
                      out.begin() + std::ptrdiff_t(b.offset));
          span.insert(span.end(), out.begin() + std::ptrdiff_t(a.offset),
                      out.begin() + std::ptrdiff_t(a.offset + a.length));
          std::copy(span.begin(), span.end(), out.begin() + std::ptrdiff_t(a.offset));
        }
        break;
      }
    }
  }
  return out;
}

std::vector<size_t> damaged_slices(const uint8_t* data, size_t size,
                                   const std::vector<ByteRange>& slices,
                                   const std::vector<Fault>& faults) {
  const auto mutated = apply(data, size, slices, faults);
  std::vector<size_t> out;
  for (size_t i = 0; i < slices.size(); ++i) {
    const ByteRange& r = slices[i];
    if (r.length == 0) continue;
    if (r.offset + r.length > mutated.size()) {
      out.push_back(i);  // slice cut short by truncation
      continue;
    }
    if (r.offset + r.length > size ||
        std::memcmp(data + r.offset, mutated.data() + r.offset, r.length) != 0)
      out.push_back(i);
  }
  return out;
}

}  // namespace sperr::faultinject
