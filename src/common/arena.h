#pragma once

// Per-thread bump-pointer scratch arena for the chunked hot paths. The
// compressor/decompressor loops and the blocked wavelet driver need a
// handful of short-lived buffers (chunk gather buffer, coefficient copy,
// SoA line tiles) per chunk; allocating them from the heap on every chunk
// iteration dominates small-chunk runs and fragments under OpenMP. An Arena
// hands out 64-byte-aligned slices of one retained block instead:
//
//   Arena& a = tls_arena();          // one per thread, reused forever
//   a.reset();                       // start of a chunk: rewind, keep memory
//   double* buf = a.alloc<double>(n);
//   { Arena::Scope s(a);             // nested callee scratch
//     double* tile = a.alloc<double>(tile_elems);
//     ...                            // tile released at scope exit, buf lives on
//   }
//
// Growth never moves live allocations (new capacity arrives as an extra
// block); reset() coalesces the blocks so after a warm-up pass the arena is
// a single block and steady-state chunk iterations perform zero heap
// allocations. Instances are not thread-safe; use tls_arena() per thread.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace sperr {

class Arena {
 public:
  /// Alignment of every returned pointer: one cache line, which also
  /// satisfies any vectorized load the compiler emits for double lanes.
  static constexpr size_t kAlignment = 64;

  Arena() = default;
  explicit Arena(size_t initial_bytes) {
    if (initial_bytes > 0) add_block(round_up(initial_bytes));
  }
  ~Arena() { release_all(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `bytes` (rounded up to kAlignment), valid until the enclosing
  /// Scope exits or reset() is called. Never returns null for bytes == 0
  /// arenas-with-capacity; grows by whole blocks, so previously returned
  /// pointers stay valid across growth.
  void* allocate(size_t bytes) {
    const size_t need = round_up(bytes ? bytes : 1);
    while (active_ < blocks_.size()) {
      Block& b = blocks_[active_];
      if (b.size - b.offset >= need) {
        void* p = static_cast<char*>(b.ptr) + b.offset;
        b.offset += need;
        return p;
      }
      // Current block exhausted for this request; move on (later blocks are
      // only ever fresh ones appended below, so no space is stranded long:
      // the next reset() coalesces everything).
      ++active_;
      if (active_ < blocks_.size()) blocks_[active_].offset = 0;
    }
    // Geometric growth: at least double total capacity so a warmed-up arena
    // stops growing after O(log) chunks.
    add_block(std::max(need, std::max(capacity(), kMinBlockBytes)));
    Block& b = blocks_.back();
    b.offset = need;
    return b.ptr;
  }

  template <class T>
  T* alloc(size_t count) {
    static_assert(alignof(T) <= kAlignment);
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Rewind to empty while retaining capacity. If growth left multiple
  /// blocks behind, they are merged into one so subsequent identical
  /// workloads allocate nothing. Invalidates everything allocate() returned.
  void reset() {
    if (blocks_.size() > 1) {
      const size_t total = capacity();
      release_all();
      add_block(total);
    }
    for (Block& b : blocks_) b.offset = 0;
    active_ = 0;
  }

  /// Total bytes owned (across blocks).
  [[nodiscard]] size_t capacity() const {
    size_t c = 0;
    for (const Block& b : blocks_) c += b.size;
    return c;
  }

  /// Bytes currently handed out.
  [[nodiscard]] size_t used() const {
    size_t u = 0;
    for (size_t i = 0; i < blocks_.size() && i <= active_; ++i)
      u += blocks_[i].offset;
    return u;
  }

  /// Number of system allocations performed over the arena's lifetime.
  /// Steady-state hot loops must leave this constant — asserted in tests.
  [[nodiscard]] size_t system_alloc_count() const { return system_allocs_; }

  /// RAII rewind point: allocations made inside the scope are released on
  /// exit, allocations made before it survive. Blocks added inside the
  /// scope are kept (capacity is never shrunk mid-flight).
  class Scope {
   public:
    explicit Scope(Arena& a)
        : arena_(a),
          active_(a.active_),
          offset_(a.active_ < a.blocks_.size() ? a.blocks_[a.active_].offset : 0) {}
    ~Scope() {
      arena_.active_ = active_;
      for (size_t i = active_; i < arena_.blocks_.size(); ++i)
        arena_.blocks_[i].offset = i == active_ ? offset_ : 0;
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Arena& arena_;
    size_t active_;
    size_t offset_;
  };

 private:
  static constexpr size_t kMinBlockBytes = size_t(1) << 16;  // 64 KiB floor

  struct Block {
    void* ptr = nullptr;
    size_t size = 0;
    size_t offset = 0;
  };

  static constexpr size_t round_up(size_t n) {
    return (n + kAlignment - 1) / kAlignment * kAlignment;
  }

  void add_block(size_t bytes) {
    Block b;
    b.size = round_up(bytes);
    b.ptr = ::operator new(b.size, std::align_val_t{kAlignment});
    ++system_allocs_;
    blocks_.push_back(b);
    active_ = blocks_.size() - 1;
  }

  void release_all() {
    for (Block& b : blocks_)
      ::operator delete(b.ptr, std::align_val_t{kAlignment});
    blocks_.clear();
    active_ = 0;
  }

  std::vector<Block> blocks_;
  size_t active_ = 0;
  size_t system_allocs_ = 0;
};

/// The calling thread's scratch arena. Every OpenMP worker (and the main
/// thread) gets its own, living for the thread's lifetime, so the chunk
/// loops reuse one warm allocation across all chunks they process.
inline Arena& tls_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace sperr
