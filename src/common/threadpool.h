#pragma once

// Minimal fork-join worker pool for deterministic intra-chunk parallelism.
//
// The SPECK sweep engine dispatches many small parallel regions per encode
// (one per bitplane per worklist bucket), so spawning std::threads at every
// region would dominate the work. A TaskPool spawns its workers once and
// reuses them: run(fn) hands every worker the same callable with a distinct
// lane id in [0, threads) and blocks until all lanes finish.
//
// Determinism is the caller's contract, not the pool's: callers partition
// work into per-lane slices and merge the per-lane results in lane order,
// so the combined output is identical at every thread count (the pool never
// reorders, steals, or splits a lane).

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sperr {

class TaskPool {
 public:
  /// Spawn `threads - 1` workers (lane 0 runs on the calling thread).
  /// threads <= 1 creates no workers and run() executes inline.
  explicit TaskPool(int threads) : threads_(threads < 1 ? 1 : threads) {
    workers_.reserve(size_t(threads_ - 1));
    for (int lane = 1; lane < threads_; ++lane)
      workers_.emplace_back([this, lane] { worker_loop(lane); });
  }

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  ~TaskPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  [[nodiscard]] int threads() const { return threads_; }

  /// Run fn(lane) for every lane in [0, threads()); returns when all lanes
  /// have finished. fn must be safe to call concurrently from different
  /// threads with distinct lane ids. Not reentrant.
  void run(const std::function<void(int)>& fn) {
    if (threads_ == 1) {
      fn(0);
      return;
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn_ = &fn;
      pending_ = threads_ - 1;
      ++generation_;
    }
    start_cv_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_ == 0; });
    fn_ = nullptr;
  }

 private:
  void worker_loop(int lane) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = fn_;
      }
      (*fn)(lane);
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--pending_ == 0) done_cv_.notify_all();
      }
    }
  }

  int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* fn_ = nullptr;
  int pending_ = 0;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Contiguous slice [begin, end) of `count` items for `lane` of `lanes`:
/// the fixed partition every parallel sweep uses. Lane boundaries depend
/// only on (count, lanes), and concatenating the lanes' outputs in lane
/// order reproduces the serial iteration order exactly.
struct LaneRange {
  size_t begin = 0;
  size_t end = 0;
};

inline LaneRange lane_range(size_t count, int lanes, int lane) {
  const size_t per = count / size_t(lanes);
  const size_t rem = count % size_t(lanes);
  const size_t b = per * size_t(lane) + std::min<size_t>(size_t(lane), rem);
  return {b, b + per + (size_t(lane) < rem ? 1 : 0)};
}

/// Resolve a thread-count knob: 1 stays serial, 0 (or negative) means one
/// lane per hardware thread, anything else is clamped to [1, 64].
inline int resolve_thread_count(int threads) {
  if (threads == 1) return 1;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw != 0 ? int(hw) : 1;
  }
  return std::clamp(threads, 1, 64);
}

}  // namespace sperr
