#pragma once

// Resource governance for decoding untrusted bytes. A SPERR container's
// header *declares* how much memory decoding it will need (volume extents,
// chunk count, lossless raw size) long before any of that memory is
// touched, so a ~100-byte "bomb" can declare exabytes and drive a naive
// decoder into std::bad_alloc — or the OOM killer. Every decode entry
// point (open_container, decompress{,_tolerant,_lowres}, the blocked
// lossless codec, outofcore, archive::Reader, and the sperr_serve
// handlers) therefore consults a ResourceLimits *before* allocating:
// required bytes are computed from header fields up front and a violation
// is reported as Status::resource_exhausted — an answer, not an exception.
//
// Two layers:
//
//   ResourceLimits — per-call ceilings (max output bytes, max transient
//     working-set bytes, max chunk/block count, max lossless expansion
//     ratio). Passing nullptr anywhere a `const ResourceLimits*` is
//     accepted means ResourceLimits::defaults(): finite, generous caps
//     that every legitimate workload fits under while multi-terabyte
//     declarations are rejected outright. Unlimited decoding is opt-in
//     (ResourceLimits::unlimited()), never the default.
//
//   MemoryBudget — an optional shared pool (atomic, thread-safe) that
//     concurrent decodes carve reservations out of, so ten simultaneous
//     requests cannot each take "one budget" and sink a shared process.
//     The server wires one of these across its worker lanes; library
//     callers can attach one via ResourceLimits::budget.

#include <atomic>
#include <cstdint>

#include "common/types.h"

namespace sperr {

/// Thread-safe byte pool shared by concurrent decodes. try_reserve either
/// debits the pool atomically or leaves it untouched — never a partial
/// grant — so a reservation that succeeded is safe to spend and must be
/// released (use Reservation for that).
class MemoryBudget {
 public:
  explicit MemoryBudget(uint64_t total_bytes) : total_(total_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Atomically reserve `bytes` from the pool; false (and no debit) when
  /// the pool cannot cover it.
  [[nodiscard]] bool try_reserve(uint64_t bytes) {
    uint64_t used = used_.load(std::memory_order_relaxed);
    do {
      if (bytes > total_ || used > total_ - bytes) return false;
    } while (!used_.compare_exchange_weak(used, used + bytes,
                                          std::memory_order_relaxed));
    return true;
  }

  void release(uint64_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] uint64_t used() const {
    return used_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t available() const {
    const uint64_t u = used();
    return u >= total_ ? 0 : total_ - u;
  }

 private:
  uint64_t total_;
  std::atomic<uint64_t> used_{0};
};

/// Per-decode resource ceilings. All caps are inclusive ("<= passes").
struct ResourceLimits {
  /// Hard cap on the decoded output a single call may produce: the field
  /// bytes of a DECOMPRESS, the raw size a lossless stream declares, the
  /// bytes an out-of-core decode writes. 64 GiB covers every SDRBench
  /// field with room to spare; a ≥1 TiB declaration is rejected.
  uint64_t max_output_bytes = uint64_t(1) << 36;

  /// Cap on transient working-set bytes beyond the output itself (chunk
  /// scratch buffers, the unwrapped inner container, a widening copy).
  uint64_t max_working_bytes = uint64_t(1) << 36;

  /// Cap on the chunk count a container directory may declare (and on the
  /// block count of a lossless stream). Directories are 32 bytes/entry, so
  /// this also bounds header-parse work for truncated bombs.
  uint64_t max_chunks = uint64_t(1) << 20;

  /// Cap on the lossless codec's total expansion: a stream of `in` bytes
  /// may declare at most `in * max_expansion` raw bytes (with a 1 MiB
  /// floor so tiny-but-legitimate streams are never pinched). Matches the
  /// codec's per-block expansion bound, so every stream the encoder can
  /// emit passes.
  uint64_t max_expansion = 4096;

  /// Optional shared pool to carve reservations from (not owned; may be
  /// null). When set, every admitted allocation must also fit the pool's
  /// remaining bytes — this is how one hostile request is kept from
  /// starving lanes other clients share.
  MemoryBudget* budget = nullptr;

  /// The finite default every decode uses when handed nullptr.
  static const ResourceLimits& defaults() {
    static const ResourceLimits l;
    return l;
  }

  /// Effectively uncapped (for trusted inputs / tooling that opts out).
  static ResourceLimits unlimited() {
    ResourceLimits l;
    l.max_output_bytes = UINT64_MAX;
    l.max_working_bytes = UINT64_MAX;
    l.max_chunks = UINT64_MAX;
    l.max_expansion = UINT64_MAX;
    return l;
  }

  [[nodiscard]] bool admits_output(uint64_t bytes) const {
    return bytes <= max_output_bytes;
  }
  [[nodiscard]] bool admits_working(uint64_t bytes) const {
    return bytes <= max_working_bytes;
  }
  [[nodiscard]] bool admits_chunks(uint64_t count) const {
    return count <= max_chunks;
  }
  /// Would decoding `declared_raw` bytes out of `input_bytes` exceed the
  /// expansion cap? Overflow-safe: compares by division, not by product.
  [[nodiscard]] bool admits_expansion(uint64_t input_bytes,
                                      uint64_t declared_raw) const {
    constexpr uint64_t kFloor = uint64_t(1) << 20;
    if (declared_raw <= kFloor) return true;
    if (input_bytes == 0) return false;
    return declared_raw / input_bytes <= max_expansion;
  }
};

/// Resolve an optional limits pointer to a concrete reference.
inline const ResourceLimits& effective_limits(const ResourceLimits* l) {
  return l ? *l : ResourceLimits::defaults();
}

/// RAII grant against a MemoryBudget. acquire() on a null budget succeeds
/// trivially (per-call ceilings still apply); on a real budget it reserves
/// the bytes until the Reservation dies or release() is called.
class Reservation {
 public:
  Reservation() = default;
  ~Reservation() { release(); }

  Reservation(Reservation&& o) noexcept : budget_(o.budget_), bytes_(o.bytes_) {
    o.budget_ = nullptr;
    o.bytes_ = 0;
  }
  Reservation& operator=(Reservation&& o) noexcept {
    if (this != &o) {
      release();
      budget_ = o.budget_;
      bytes_ = o.bytes_;
      o.budget_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }
  Reservation(const Reservation&) = delete;
  Reservation& operator=(const Reservation&) = delete;

  /// Reserve `bytes` from `budget` (nullptr budget = always granted).
  /// Replaces any previous grant. False leaves this Reservation empty.
  [[nodiscard]] bool acquire(MemoryBudget* budget, uint64_t bytes) {
    release();
    if (budget && !budget->try_reserve(bytes)) return false;
    budget_ = budget;
    bytes_ = bytes;
    return true;
  }

  void release() {
    if (budget_) budget_->release(bytes_);
    budget_ = nullptr;
    bytes_ = 0;
  }

  [[nodiscard]] uint64_t bytes() const { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  uint64_t bytes_ = 0;
};

}  // namespace sperr
