#include "wavelet/kernels.h"

#include <algorithm>
#include <cmath>

#include "wavelet/cdf97.h"

namespace sperr::wavelet {

namespace {

const double kSqrt2 = std::sqrt(2.0);

void deinterleave(double* x, size_t n, double* scratch) {
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i) scratch[i] = x[2 * i];
  for (size_t i = 0; i < n - na; ++i) scratch[na + i] = x[2 * i + 1];
  std::copy(scratch, scratch + n, x);
}

void interleave(double* x, size_t n, double* scratch) {
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i) scratch[2 * i] = x[i];
  for (size_t i = 0; i < n - na; ++i) scratch[2 * i + 1] = x[na + i];
  std::copy(scratch, scratch + n, x);
}

// --- Haar (orthonormal via lifting) ----------------------------------------

void haar_analysis(double* x, size_t n, double* scratch) {
  if (n < 2) return;
  for (size_t i = 1; i < n; i += 2) x[i] -= x[i - 1];        // detail
  for (size_t i = 1; i < n; i += 2) x[i - 1] += 0.5 * x[i];  // mean
  for (size_t i = 0; i < n; i += 2) x[i] *= kSqrt2;
  for (size_t i = 1; i < n; i += 2) x[i] /= kSqrt2;
  deinterleave(x, n, scratch);
}

void haar_synthesis(double* x, size_t n, double* scratch) {
  if (n < 2) return;
  interleave(x, n, scratch);
  for (size_t i = 0; i < n; i += 2) x[i] /= kSqrt2;
  for (size_t i = 1; i < n; i += 2) x[i] *= kSqrt2;
  for (size_t i = 1; i < n; i += 2) x[i - 1] -= 0.5 * x[i];
  for (size_t i = 1; i < n; i += 2) x[i] += x[i - 1];
}

// --- LeGall / CDF 5/3 --------------------------------------------------------

void lift_odd53(double* x, size_t n) {
  for (size_t i = 1; i + 1 < n; i += 2) x[i] -= 0.5 * (x[i - 1] + x[i + 1]);
  if (n % 2 == 0 && n >= 2) x[n - 1] -= x[n - 2];  // symmetric extension
}

void lift_even53(double* x, size_t n) {
  if (n >= 2) x[0] += 0.5 * x[1];
  for (size_t i = 2; i + 1 < n; i += 2) x[i] += 0.25 * (x[i - 1] + x[i + 1]);
  if (n % 2 == 1 && n >= 3) x[n - 1] += 0.5 * x[n - 2];
}

void cdf53_analysis(double* x, size_t n, double* scratch) {
  if (n < 2) return;
  lift_odd53(x, n);
  lift_even53(x, n);
  // Approximate unit-norm scaling (exact orthonormality is impossible for
  // this kernel; sqrt(2) balances the branches like JPEG 2000's convention).
  for (size_t i = 0; i < n; i += 2) x[i] *= kSqrt2;
  for (size_t i = 1; i < n; i += 2) x[i] /= kSqrt2;
  deinterleave(x, n, scratch);
}

void cdf53_synthesis(double* x, size_t n, double* scratch) {
  if (n < 2) return;
  interleave(x, n, scratch);
  for (size_t i = 0; i < n; i += 2) x[i] /= kSqrt2;
  for (size_t i = 1; i < n; i += 2) x[i] *= kSqrt2;
  if (n >= 2) x[0] -= 0.5 * x[1];
  for (size_t i = 2; i + 1 < n; i += 2) x[i] -= 0.25 * (x[i - 1] + x[i + 1]);
  if (n % 2 == 1 && n >= 3) x[n - 1] -= 0.5 * x[n - 2];
  for (size_t i = 1; i + 1 < n; i += 2) x[i] += 0.5 * (x[i - 1] + x[i + 1]);
  if (n % 2 == 0 && n >= 2) x[n - 1] += x[n - 2];
}

// --- Batched variants (SoA tile, lanes innermost; see cdf97.h) -------------
// Each mirrors its scalar sibling operation-for-operation per lane, so the
// output is bit-identical to per-line transforms.

double* haar_analysis_batch(double* t, size_t n, size_t nb, double* scratch) {
  if (n < 2 || nb == 0) return t;
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] -= t[(i - 1) * nb + j];
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[(i - 1) * nb + j] += 0.5 * t[i * nb + j];
  for (size_t i = 0; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] *= kSqrt2;
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] /= kSqrt2;
  deinterleave_batch(t, n, nb, scratch);
  return scratch;
}

double* haar_synthesis_batch(double* t, size_t n, size_t nb, double* scratch) {
  if (n < 2 || nb == 0) return t;
  interleave_batch(t, n, nb, scratch);
  std::swap(t, scratch);  // result accumulates in the interleaved buffer
  for (size_t i = 0; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] /= kSqrt2;
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] *= kSqrt2;
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[(i - 1) * nb + j] -= 0.5 * t[i * nb + j];
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] += t[(i - 1) * nb + j];
  return t;
}

void lift_odd53_batch(double* t, size_t n, size_t nb) {
  for (size_t i = 1; i + 1 < n; i += 2)
    for (size_t j = 0; j < nb; ++j)
      t[i * nb + j] -= 0.5 * (t[(i - 1) * nb + j] + t[(i + 1) * nb + j]);
  if (n % 2 == 0 && n >= 2)
    for (size_t j = 0; j < nb; ++j) t[(n - 1) * nb + j] -= t[(n - 2) * nb + j];
}

void lift_even53_batch(double* t, size_t n, size_t nb) {
  if (n >= 2)
    for (size_t j = 0; j < nb; ++j) t[j] += 0.5 * t[nb + j];
  for (size_t i = 2; i + 1 < n; i += 2)
    for (size_t j = 0; j < nb; ++j)
      t[i * nb + j] += 0.25 * (t[(i - 1) * nb + j] + t[(i + 1) * nb + j]);
  if (n % 2 == 1 && n >= 3)
    for (size_t j = 0; j < nb; ++j)
      t[(n - 1) * nb + j] += 0.5 * t[(n - 2) * nb + j];
}

double* cdf53_analysis_batch(double* t, size_t n, size_t nb, double* scratch) {
  if (n < 2 || nb == 0) return t;
  lift_odd53_batch(t, n, nb);
  lift_even53_batch(t, n, nb);
  for (size_t i = 0; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] *= kSqrt2;
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] /= kSqrt2;
  deinterleave_batch(t, n, nb, scratch);
  return scratch;
}

double* cdf53_synthesis_batch(double* t, size_t n, size_t nb, double* scratch) {
  if (n < 2 || nb == 0) return t;
  interleave_batch(t, n, nb, scratch);
  std::swap(t, scratch);  // result accumulates in the interleaved buffer
  for (size_t i = 0; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] /= kSqrt2;
  for (size_t i = 1; i < n; i += 2)
    for (size_t j = 0; j < nb; ++j) t[i * nb + j] *= kSqrt2;
  if (n >= 2)
    for (size_t j = 0; j < nb; ++j) t[j] -= 0.5 * t[nb + j];
  for (size_t i = 2; i + 1 < n; i += 2)
    for (size_t j = 0; j < nb; ++j)
      t[i * nb + j] -= 0.25 * (t[(i - 1) * nb + j] + t[(i + 1) * nb + j]);
  if (n % 2 == 1 && n >= 3)
    for (size_t j = 0; j < nb; ++j)
      t[(n - 1) * nb + j] -= 0.5 * t[(n - 2) * nb + j];
  for (size_t i = 1; i + 1 < n; i += 2)
    for (size_t j = 0; j < nb; ++j)
      t[i * nb + j] += 0.5 * (t[(i - 1) * nb + j] + t[(i + 1) * nb + j]);
  if (n % 2 == 0 && n >= 2)
    for (size_t j = 0; j < nb; ++j) t[(n - 1) * nb + j] += t[(n - 2) * nb + j];
  return t;
}

}  // namespace

double* batch_analysis(Kernel k, double* tile, size_t n, size_t nb, double* scratch) {
  switch (k) {
    case Kernel::cdf97: return cdf97_analysis_batch(tile, n, nb, scratch);
    case Kernel::cdf53: return cdf53_analysis_batch(tile, n, nb, scratch);
    case Kernel::haar: return haar_analysis_batch(tile, n, nb, scratch);
  }
  return tile;
}

double* batch_synthesis(Kernel k, double* tile, size_t n, size_t nb, double* scratch) {
  switch (k) {
    case Kernel::cdf97: return cdf97_synthesis_batch(tile, n, nb, scratch);
    case Kernel::cdf53: return cdf53_synthesis_batch(tile, n, nb, scratch);
    case Kernel::haar: return haar_synthesis_batch(tile, n, nb, scratch);
  }
  return tile;
}

void line_analysis(Kernel k, double* x, size_t n, double* scratch) {
  switch (k) {
    case Kernel::cdf97: cdf97_analysis(x, n, scratch); return;
    case Kernel::cdf53: cdf53_analysis(x, n, scratch); return;
    case Kernel::haar: haar_analysis(x, n, scratch); return;
  }
}

void line_synthesis(Kernel k, double* x, size_t n, double* scratch) {
  switch (k) {
    case Kernel::cdf97: cdf97_synthesis(x, n, scratch); return;
    case Kernel::cdf53: cdf53_synthesis(x, n, scratch); return;
    case Kernel::haar: haar_synthesis(x, n, scratch); return;
  }
}

const char* to_string(Kernel k) {
  switch (k) {
    case Kernel::cdf97: return "CDF 9/7";
    case Kernel::cdf53: return "CDF 5/3";
    case Kernel::haar: return "Haar";
  }
  return "?";
}

}  // namespace sperr::wavelet
