#pragma once

// Alternative wavelet kernels for the §III-A ablation: the paper picks the
// CDF 9/7 "among a large selection of available wavelets" because of its
// rate-distortion track record on scientific data. To make that design
// choice measurable, this module provides two classic alternatives behind
// the same line-transform interface as cdf97:
//   * Haar (orthonormal, 2-tap): the cheapest possible kernel;
//   * LeGall/CDF 5/3 (biorthogonal, the JPEG 2000 lossless kernel), scaled
//     toward unit norm for lossy use.
// The dwt driver accepts a Kernel so the ablation bench can run the whole
// SPERR coefficient path with each.

#include <cstddef>

namespace sperr::wavelet {

enum class Kernel {
  cdf97,  ///< the paper's choice (default everywhere in the library)
  cdf53,
  haar,
};

/// One forward pass on a line; same contract as cdf97_analysis (output
/// de-interleaved, approximation first).
void line_analysis(Kernel k, double* x, size_t n, double* scratch);

/// Exact inverse of line_analysis.
void line_synthesis(Kernel k, double* x, size_t n, double* scratch);

/// Batched forward pass on `nb` lines in an SoA tile (tile[i * nb + j] is
/// sample i of lane j; see cdf97_analysis_batch). Bit-identical per lane to
/// nb line_analysis calls; `scratch` must hold n * nb doubles. Returns the
/// buffer holding the result (tile or scratch); both are clobbered.
double* batch_analysis(Kernel k, double* tile, size_t n, size_t nb, double* scratch);

/// Exact inverse of batch_analysis (bit-identical to per-line synthesis).
double* batch_synthesis(Kernel k, double* tile, size_t n, size_t nb, double* scratch);

[[nodiscard]] const char* to_string(Kernel k);

}  // namespace sperr::wavelet
