#pragma once

// Multi-dimensional discrete wavelet transform drivers. Transforms are
// separable: each level applies the 1-D CDF 9/7 pass along every axis that
// still has levels remaining (paper §III-A), then recurses on the low-pass
// box. Axes whose extent is too short (or exhausted) keep their full extent,
// which covers mixed cases such as a thin slab (2-D transform per slice).

#include <cstddef>
#include <vector>

#include "common/types.h"
#include "wavelet/kernels.h"

namespace sperr::wavelet {

/// Per-axis transform levels for a grid, using the paper's policy.
struct LevelPlan {
  size_t lx = 0, ly = 0, lz = 0;

  [[nodiscard]] size_t max() const;
};

LevelPlan plan_levels(Dims dims);

/// Forward DWT in place on `data` (length dims.total(), x fastest).
/// The kernel defaults to the paper's CDF 9/7; alternatives exist for the
/// §III-A kernel ablation (bench_ablation).
void forward_dwt(double* data, Dims dims, Kernel kernel = Kernel::cdf97);

/// Inverse of forward_dwt.
void inverse_dwt(double* data, Dims dims, Kernel kernel = Kernel::cdf97);

/// Partial inverse: undo only the levels >= keep_levels, leaving the array
/// as if the forward transform had stopped after `keep_levels` levels. With
/// keep_levels == 0 this equals inverse_dwt. Enables multi-resolution
/// reconstruction (paper §VII): the low-pass box of the remaining hierarchy
/// is a coarsened version of the data.
void inverse_dwt_partial(double* data, Dims dims, size_t keep_levels);

/// The sequence of low-pass box extents the forward transform visits,
/// starting with the full grid; entry i is the box transformed at level i.
std::vector<Dims> lowpass_boxes(Dims dims);

/// Extents of the low-pass box after `levels` forward levels (clamped to
/// the level plan). levels == plan.max() gives the final corner.
Dims lowpass_box_at(Dims dims, size_t levels);

/// Per-pass DC gain of the (scaled) low-pass analysis branch: the value an
/// interior approximation coefficient takes for constant-1 input. Used to
/// normalize coarse reconstructions so they sit on the data's own scale.
double lowpass_dc_gain();

}  // namespace sperr::wavelet
