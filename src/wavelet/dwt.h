#pragma once

// Multi-dimensional discrete wavelet transform drivers. Transforms are
// separable: each level applies the 1-D CDF 9/7 pass along every axis that
// still has levels remaining (paper §III-A), then recurses on the low-pass
// box. Axes whose extent is too short (or exhausted) keep their full extent,
// which covers mixed cases such as a thin slab (2-D transform per slice).
//
// The production drivers are cache-blocked: each axis pass gathers tiles of
// up to kLineBatch adjacent lines into a contiguous SoA scratch tile
// (sample-major, lines innermost), runs the batched lifting kernel across
// the whole tile, and scatters back. The strided element-at-a-time walks of
// the Y/Z axes become sequential kLineBatch-wide loads/stores and the
// lifting arithmetic vectorizes across lanes. Output is bit-identical to
// the per-line reference drivers, which remain available (and tested
// against) below.

#include <cstddef>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "wavelet/kernels.h"

namespace sperr::wavelet {

/// Lines per SoA tile in the blocked drivers: 32 lanes of doubles = 4
/// cache lines per sample row, small enough that a 256-sample tile (64 KiB
/// + equal scratch) stays L2-resident, wide enough to saturate any vector
/// unit the compiler targets.
inline constexpr size_t kLineBatch = 32;

/// Per-axis transform levels for a grid, using the paper's policy.
struct LevelPlan {
  size_t lx = 0, ly = 0, lz = 0;

  [[nodiscard]] size_t max() const;
};

LevelPlan plan_levels(Dims dims);

/// Forward DWT in place on `data` (length dims.total(), x fastest).
/// The kernel defaults to the paper's CDF 9/7; alternatives exist for the
/// §III-A kernel ablation (bench_ablation). Tile scratch comes from `arena`
/// when given (rewound to its entry state on return), else from the calling
/// thread's tls_arena() — either way, repeated transforms of equal-size
/// grids perform no heap allocation after the first call.
void forward_dwt(double* data, Dims dims, Kernel kernel = Kernel::cdf97,
                 Arena* arena = nullptr);

/// Inverse of forward_dwt.
void inverse_dwt(double* data, Dims dims, Kernel kernel = Kernel::cdf97,
                 Arena* arena = nullptr);

/// Partial inverse: undo only the levels >= keep_levels, leaving the array
/// as if the forward transform had stopped after `keep_levels` levels. With
/// keep_levels == 0 this equals inverse_dwt. Enables multi-resolution
/// reconstruction (paper §VII): the low-pass box of the remaining hierarchy
/// is a coarsened version of the data.
void inverse_dwt_partial(double* data, Dims dims, size_t keep_levels,
                         Arena* arena = nullptr);

/// Unblocked per-line reference drivers: the original element-at-a-time
/// implementation, kept as the equivalence oracle for the blocked path and
/// as the baseline in bench_micro's BENCH_wavelet.json record. Bit-identical
/// to forward_dwt / inverse_dwt.
void forward_dwt_reference(double* data, Dims dims, Kernel kernel = Kernel::cdf97);
void inverse_dwt_reference(double* data, Dims dims, Kernel kernel = Kernel::cdf97);

/// The sequence of low-pass box extents the forward transform visits,
/// starting with the full grid; entry i is the box transformed at level i.
std::vector<Dims> lowpass_boxes(Dims dims);

/// Extents of the low-pass box after `levels` forward levels (clamped to
/// the level plan). levels == plan.max() gives the final corner.
Dims lowpass_box_at(Dims dims, size_t levels);

/// Per-pass DC gain of the (scaled) low-pass analysis branch: the value an
/// interior approximation coefficient takes for constant-1 input. Used to
/// normalize coarse reconstructions so they sit on the data's own scale.
double lowpass_dc_gain();

}  // namespace sperr::wavelet
