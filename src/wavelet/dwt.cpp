#include "wavelet/dwt.h"

#include <algorithm>

#include "wavelet/cdf97.h"

namespace sperr::wavelet {

namespace {

// Apply `fn` (analysis or synthesis) along the x axis for every (y, z) line
// inside box (bx, by, bz) of a grid with full extents `dims`.
template <class Fn>
void transform_x(double* data, Dims dims, Dims box, Fn fn) {
  std::vector<double> scratch(box.x);
  for (size_t z = 0; z < box.z; ++z)
    for (size_t y = 0; y < box.y; ++y)
      fn(data + dims.index(0, y, z), box.x, scratch.data());
}

template <class Fn>
void transform_y(double* data, Dims dims, Dims box, Fn fn) {
  std::vector<double> line(box.y), scratch(box.y);
  for (size_t z = 0; z < box.z; ++z)
    for (size_t x = 0; x < box.x; ++x) {
      for (size_t y = 0; y < box.y; ++y) line[y] = data[dims.index(x, y, z)];
      fn(line.data(), box.y, scratch.data());
      for (size_t y = 0; y < box.y; ++y) data[dims.index(x, y, z)] = line[y];
    }
}

template <class Fn>
void transform_z(double* data, Dims dims, Dims box, Fn fn) {
  std::vector<double> line(box.z), scratch(box.z);
  for (size_t y = 0; y < box.y; ++y)
    for (size_t x = 0; x < box.x; ++x) {
      for (size_t z = 0; z < box.z; ++z) line[z] = data[dims.index(x, y, z)];
      fn(line.data(), box.z, scratch.data());
      for (size_t z = 0; z < box.z; ++z) data[dims.index(x, y, z)] = line[z];
    }
}

}  // namespace

size_t LevelPlan::max() const {
  return std::max({lx, ly, lz});
}

LevelPlan plan_levels(Dims dims) {
  return {num_levels(dims.x), num_levels(dims.y), num_levels(dims.z)};
}

std::vector<Dims> lowpass_boxes(Dims dims) {
  const LevelPlan plan = plan_levels(dims);
  std::vector<Dims> boxes;
  Dims cur = dims;
  for (size_t l = 0; l < plan.max(); ++l) {
    boxes.push_back(cur);
    if (l < plan.lx) cur.x = approx_len(cur.x);
    if (l < plan.ly) cur.y = approx_len(cur.y);
    if (l < plan.lz) cur.z = approx_len(cur.z);
  }
  return boxes;
}

void forward_dwt(double* data, Dims dims, Kernel kernel) {
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  const auto analysis = [kernel](double* x, size_t n, double* scratch) {
    line_analysis(kernel, x, n, scratch);
  };
  for (size_t l = 0; l < boxes.size(); ++l) {
    const Dims box = boxes[l];
    if (l < plan.lx) transform_x(data, dims, box, analysis);
    if (l < plan.ly) transform_y(data, dims, box, analysis);
    if (l < plan.lz) transform_z(data, dims, box, analysis);
  }
}

void inverse_dwt(double* data, Dims dims, Kernel kernel) {
  if (kernel == Kernel::cdf97) {
    inverse_dwt_partial(data, dims, 0);
    return;
  }
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  const auto synthesis = [kernel](double* x, size_t n, double* scratch) {
    line_synthesis(kernel, x, n, scratch);
  };
  for (size_t l = boxes.size(); l-- > 0;) {
    const Dims box = boxes[l];
    if (l < plan.lz) transform_z(data, dims, box, synthesis);
    if (l < plan.ly) transform_y(data, dims, box, synthesis);
    if (l < plan.lx) transform_x(data, dims, box, synthesis);
  }
}

void inverse_dwt_partial(double* data, Dims dims, size_t keep_levels) {
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  for (size_t l = boxes.size(); l-- > keep_levels;) {
    const Dims box = boxes[l];
    // Synthesis undoes axes in the reverse order of analysis.
    if (l < plan.lz) transform_z(data, dims, box, cdf97_synthesis);
    if (l < plan.ly) transform_y(data, dims, box, cdf97_synthesis);
    if (l < plan.lx) transform_x(data, dims, box, cdf97_synthesis);
  }
}

Dims lowpass_box_at(Dims dims, size_t levels) {
  const LevelPlan plan = plan_levels(dims);
  Dims cur = dims;
  const size_t n = std::min(levels, plan.max());
  for (size_t l = 0; l < n; ++l) {
    if (l < plan.lx) cur.x = approx_len(cur.x);
    if (l < plan.ly) cur.y = approx_len(cur.y);
    if (l < plan.lz) cur.z = approx_len(cur.z);
  }
  return cur;
}

double lowpass_dc_gain() {
  static const double gain = [] {
    // One analysis pass on a long constant line; read an interior
    // approximation coefficient (boundary effects decay within ~4 samples).
    std::vector<double> line(256, 1.0), scratch(256);
    cdf97_analysis(line.data(), line.size(), scratch.data());
    return line[64];
  }();
  return gain;
}

}  // namespace sperr::wavelet
