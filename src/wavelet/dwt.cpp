#include "wavelet/dwt.h"

#include <algorithm>

#include "wavelet/cdf97.h"

namespace sperr::wavelet {

namespace {

// ---------------------------------------------------------------------------
// Blocked drivers. One axis pass is described by the geometry of its lines:
// every line has `n` samples spaced `stride` apart, and line (u, v) starts
// at offset u * bu + v * bv. Lines are enumerated u-fastest and batched
// kLineBatch at a time into an SoA tile (sample-major, lanes innermost), so
//   * Y axis (bu = 1): a tile row is nb adjacent-x elements — the strided
//     per-line walk becomes contiguous loads/stores;
//   * Z axis (bu = 1): same, one contiguous nb-run per z plane;
//   * X axis (bu = dims.x): the gather reads each line contiguously and
//     transposes it into the tile.
// The batched kernels then sweep the tile with lane-parallel lifting steps.

struct AxisPass {
  size_t n;       ///< samples per line
  size_t stride;  ///< distance between consecutive samples of a line
  size_t n_u;     ///< lines along the fast enumeration axis
  size_t n_v;     ///< lines along the slow enumeration axis
  size_t bu;      ///< offset step per u
  size_t bv;      ///< offset step per v
};

AxisPass pass_z(Dims dims, Dims box) {
  return {box.z, dims.x * dims.y, box.x, box.y, 1, dims.x};
}

// Run `fn(tile, n, nb, scratch)` over every line batch of the pass. The
// tile and its scratch live in the arena and are released on return.
template <class BatchFn>
void blocked_pass(double* data, const AxisPass& p, Arena& arena, BatchFn fn) {
  if (p.n < 2) return;  // the kernels are no-ops on such lines
  Arena::Scope scope(arena);
  double* tile = arena.alloc<double>(p.n * kLineBatch);
  double* scratch = arena.alloc<double>(p.n * kLineBatch);

  const size_t nlines = p.n_u * p.n_v;
  size_t base[kLineBatch];
  for (size_t l0 = 0; l0 < nlines; l0 += kLineBatch) {
    const size_t nb = std::min(kLineBatch, nlines - l0);
    const size_t u0 = l0 % p.n_u;
    const size_t v0 = l0 / p.n_u;
    // Lanes that are consecutive along u with bu == 1 sit adjacent in
    // memory; every tile row is then one contiguous nb-wide run.
    if (p.bu == 1 && u0 + nb <= p.n_u) {
      const double* src0 = data + u0 * p.bu + v0 * p.bv;
      for (size_t i = 0; i < p.n; ++i) {
        const double* src = src0 + i * p.stride;
        double* dst = tile + i * nb;
        for (size_t j = 0; j < nb; ++j) dst[j] = src[j];
      }
      const double* res = fn(tile, p.n, nb, scratch);
      double* out0 = data + u0 * p.bu + v0 * p.bv;
      for (size_t i = 0; i < p.n; ++i) {
        const double* src = res + i * nb;
        double* dst = out0 + i * p.stride;
        for (size_t j = 0; j < nb; ++j) dst[j] = src[j];
      }
      continue;
    }
    // General case (x-axis tiles, u-boundary-crossing batches): per-lane
    // start offsets.
    for (size_t j = 0; j < nb; ++j) {
      const size_t u = (l0 + j) % p.n_u;
      const size_t v = (l0 + j) / p.n_u;
      base[j] = u * p.bu + v * p.bv;
    }
    if (p.stride == 1) {
      for (size_t j = 0; j < nb; ++j) {
        const double* src = data + base[j];
        for (size_t i = 0; i < p.n; ++i) tile[i * nb + j] = src[i];
      }
      const double* res = fn(tile, p.n, nb, scratch);
      for (size_t j = 0; j < nb; ++j) {
        double* dst = data + base[j];
        for (size_t i = 0; i < p.n; ++i) dst[i] = res[i * nb + j];
      }
    } else {
      for (size_t i = 0; i < p.n; ++i) {
        const size_t off = i * p.stride;
        double* dst = tile + i * nb;
        for (size_t j = 0; j < nb; ++j) dst[j] = data[base[j] + off];
      }
      const double* res = fn(tile, p.n, nb, scratch);
      for (size_t i = 0; i < p.n; ++i) {
        const size_t off = i * p.stride;
        const double* src = res + i * nb;
        for (size_t j = 0; j < nb; ++j) data[base[j] + off] = src[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-line reference drivers (the original implementation): one strided
// line at a time through a scalar scratch buffer. Kept as the equivalence
// oracle and benchmark baseline.

// Apply `fn` (analysis or synthesis) along the x axis for every (y, z) line
// inside box (bx, by, bz) of a grid with full extents `dims`.
template <class Fn>
void transform_x(double* data, Dims dims, Dims box, Fn fn) {
  std::vector<double> scratch(box.x);
  for (size_t z = 0; z < box.z; ++z)
    for (size_t y = 0; y < box.y; ++y)
      fn(data + dims.index(0, y, z), box.x, scratch.data());
}

template <class Fn>
void transform_y(double* data, Dims dims, Dims box, Fn fn) {
  std::vector<double> line(box.y), scratch(box.y);
  for (size_t z = 0; z < box.z; ++z)
    for (size_t x = 0; x < box.x; ++x) {
      for (size_t y = 0; y < box.y; ++y) line[y] = data[dims.index(x, y, z)];
      fn(line.data(), box.y, scratch.data());
      for (size_t y = 0; y < box.y; ++y) data[dims.index(x, y, z)] = line[y];
    }
}

template <class Fn>
void transform_z(double* data, Dims dims, Dims box, Fn fn) {
  std::vector<double> line(box.z), scratch(box.z);
  for (size_t y = 0; y < box.y; ++y)
    for (size_t x = 0; x < box.x; ++x) {
      for (size_t z = 0; z < box.z; ++z) line[z] = data[dims.index(x, y, z)];
      fn(line.data(), box.z, scratch.data());
      for (size_t z = 0; z < box.z; ++z) data[dims.index(x, y, z)] = line[z];
    }
}

// X and Y passes only couple samples within one z-plane, so they can be
// fused plane-by-plane: transform a plane's x lines, then its y lines (or
// the reverse for synthesis) while the plane (512 KiB at 256²) is still
// cache-resident, instead of streaming the whole box from memory once per
// axis. The per-line arithmetic is unchanged — output stays bit-identical.
template <class BatchFn>
void blocked_pass_xy(double* data, Dims dims, Dims box, bool do_x, bool do_y,
                     bool x_first, Arena& arena, BatchFn fn) {
  const size_t plane_elems = dims.x * dims.y;
  const AxisPass px{box.x, 1, box.y, 1, dims.x, 0};
  const AxisPass py{box.y, dims.x, box.x, 1, 1, 0};
  for (size_t z = 0; z < box.z; ++z) {
    double* plane = data + z * plane_elems;
    if (x_first) {
      if (do_x) blocked_pass(plane, px, arena, fn);
      if (do_y) blocked_pass(plane, py, arena, fn);
    } else {
      if (do_y) blocked_pass(plane, py, arena, fn);
      if (do_x) blocked_pass(plane, px, arena, fn);
    }
  }
}

}  // namespace

size_t LevelPlan::max() const {
  return std::max({lx, ly, lz});
}

LevelPlan plan_levels(Dims dims) {
  return {num_levels(dims.x), num_levels(dims.y), num_levels(dims.z)};
}

std::vector<Dims> lowpass_boxes(Dims dims) {
  const LevelPlan plan = plan_levels(dims);
  std::vector<Dims> boxes;
  Dims cur = dims;
  for (size_t l = 0; l < plan.max(); ++l) {
    boxes.push_back(cur);
    if (l < plan.lx) cur.x = approx_len(cur.x);
    if (l < plan.ly) cur.y = approx_len(cur.y);
    if (l < plan.lz) cur.z = approx_len(cur.z);
  }
  return boxes;
}

void forward_dwt(double* data, Dims dims, Kernel kernel, Arena* arena) {
  Arena& a = arena ? *arena : tls_arena();
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  const auto analysis = [kernel](double* tile, size_t n, size_t nb, double* s) {
    return batch_analysis(kernel, tile, n, nb, s);
  };
  for (size_t l = 0; l < boxes.size(); ++l) {
    const Dims box = boxes[l];
    const bool dx = l < plan.lx, dy = l < plan.ly;
    if (dx || dy)
      blocked_pass_xy(data, dims, box, dx, dy, /*x_first=*/true, a, analysis);
    if (l < plan.lz) blocked_pass(data, pass_z(dims, box), a, analysis);
  }
}

void inverse_dwt(double* data, Dims dims, Kernel kernel, Arena* arena) {
  if (kernel == Kernel::cdf97) {
    inverse_dwt_partial(data, dims, 0, arena);
    return;
  }
  Arena& a = arena ? *arena : tls_arena();
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  const auto synthesis = [kernel](double* tile, size_t n, size_t nb, double* s) {
    return batch_synthesis(kernel, tile, n, nb, s);
  };
  for (size_t l = boxes.size(); l-- > 0;) {
    const Dims box = boxes[l];
    if (l < plan.lz) blocked_pass(data, pass_z(dims, box), a, synthesis);
    const bool dx = l < plan.lx, dy = l < plan.ly;
    if (dx || dy)
      blocked_pass_xy(data, dims, box, dx, dy, /*x_first=*/false, a, synthesis);
  }
}

void inverse_dwt_partial(double* data, Dims dims, size_t keep_levels,
                         Arena* arena) {
  Arena& a = arena ? *arena : tls_arena();
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  for (size_t l = boxes.size(); l-- > keep_levels;) {
    const Dims box = boxes[l];
    // Synthesis undoes axes in the reverse order of analysis.
    if (l < plan.lz) blocked_pass(data, pass_z(dims, box), a, cdf97_synthesis_batch);
    const bool dx = l < plan.lx, dy = l < plan.ly;
    if (dx || dy)
      blocked_pass_xy(data, dims, box, dx, dy, /*x_first=*/false, a,
                      cdf97_synthesis_batch);
  }
}

void forward_dwt_reference(double* data, Dims dims, Kernel kernel) {
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  const auto analysis = [kernel](double* x, size_t n, double* scratch) {
    line_analysis(kernel, x, n, scratch);
  };
  for (size_t l = 0; l < boxes.size(); ++l) {
    const Dims box = boxes[l];
    if (l < plan.lx) transform_x(data, dims, box, analysis);
    if (l < plan.ly) transform_y(data, dims, box, analysis);
    if (l < plan.lz) transform_z(data, dims, box, analysis);
  }
}

void inverse_dwt_reference(double* data, Dims dims, Kernel kernel) {
  const LevelPlan plan = plan_levels(dims);
  const auto boxes = lowpass_boxes(dims);
  const auto synthesis = [kernel](double* x, size_t n, double* scratch) {
    line_synthesis(kernel, x, n, scratch);
  };
  for (size_t l = boxes.size(); l-- > 0;) {
    const Dims box = boxes[l];
    if (l < plan.lz) transform_z(data, dims, box, synthesis);
    if (l < plan.ly) transform_y(data, dims, box, synthesis);
    if (l < plan.lx) transform_x(data, dims, box, synthesis);
  }
}

Dims lowpass_box_at(Dims dims, size_t levels) {
  const LevelPlan plan = plan_levels(dims);
  Dims cur = dims;
  const size_t n = std::min(levels, plan.max());
  for (size_t l = 0; l < n; ++l) {
    if (l < plan.lx) cur.x = approx_len(cur.x);
    if (l < plan.ly) cur.y = approx_len(cur.y);
    if (l < plan.lz) cur.z = approx_len(cur.z);
  }
  return cur;
}

double lowpass_dc_gain() {
  static const double gain = [] {
    // One analysis pass on a long constant line; read an interior
    // approximation coefficient (boundary effects decay within ~4 samples).
    std::vector<double> line(256, 1.0), scratch(256);
    cdf97_analysis(line.data(), line.size(), scratch.data());
    return line[64];
  }();
  return gain;
}

}  // namespace sperr::wavelet
