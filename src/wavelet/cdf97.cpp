#include "wavelet/cdf97.h"

#include <algorithm>

namespace sperr::wavelet {

namespace {

// One lifting step on the odd samples: x[i] += c * (x[i-1] + x[i+1]) for odd
// i, with symmetric extension at the right edge when the last sample is odd.
void lift_odd(double* x, size_t n, double c) {
  for (size_t i = 1; i + 1 < n; i += 2) x[i] += c * (x[i - 1] + x[i + 1]);
  if (n % 2 == 0 && n >= 2) x[n - 1] += 2.0 * c * x[n - 2];
}

// One lifting step on the even samples, symmetric extension on both edges.
void lift_even(double* x, size_t n, double c) {
  if (n >= 2) x[0] += 2.0 * c * x[1];
  for (size_t i = 2; i + 1 < n; i += 2) x[i] += c * (x[i - 1] + x[i + 1]);
  if (n % 2 == 1 && n >= 3) x[n - 1] += 2.0 * c * x[n - 2];
}

void scale(double* x, size_t n, double even_factor, double odd_factor) {
  for (size_t i = 0; i < n; i += 2) x[i] *= even_factor;
  for (size_t i = 1; i < n; i += 2) x[i] *= odd_factor;
}

}  // namespace

void cdf97_analysis(double* x, size_t n, double* scratch) {
  if (n < 2) return;

  lift_odd(x, n, kAlpha);
  lift_even(x, n, kBeta);
  lift_odd(x, n, kGamma);
  lift_even(x, n, kDelta);
  scale(x, n, kZeta, 1.0 / kZeta);

  // De-interleave: evens (approximation) first, odds (detail) after.
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i) scratch[i] = x[2 * i];
  for (size_t i = 0; i < n - na; ++i) scratch[na + i] = x[2 * i + 1];
  std::copy(scratch, scratch + n, x);
}

void cdf97_synthesis(double* x, size_t n, double* scratch) {
  if (n < 2) return;

  // Re-interleave.
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i) scratch[2 * i] = x[i];
  for (size_t i = 0; i < n - na; ++i) scratch[2 * i + 1] = x[na + i];
  std::copy(scratch, scratch + n, x);

  scale(x, n, 1.0 / kZeta, kZeta);
  lift_even(x, n, -kDelta);
  lift_odd(x, n, -kGamma);
  lift_even(x, n, -kBeta);
  lift_odd(x, n, -kAlpha);
}

size_t num_levels(size_t n) {
  if (n < 8) return 0;
  size_t log2n = 0;
  while ((size_t(1) << (log2n + 1)) <= n) ++log2n;
  return std::min<size_t>(6, log2n - 2);
}

}  // namespace sperr::wavelet
