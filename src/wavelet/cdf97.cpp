#include "wavelet/cdf97.h"

#include <algorithm>

namespace sperr::wavelet {

namespace {

// One lifting step on the odd samples: x[i] += c * (x[i-1] + x[i+1]) for odd
// i, with symmetric extension at the right edge when the last sample is odd.
void lift_odd(double* x, size_t n, double c) {
  for (size_t i = 1; i + 1 < n; i += 2) x[i] += c * (x[i - 1] + x[i + 1]);
  if (n % 2 == 0 && n >= 2) x[n - 1] += 2.0 * c * x[n - 2];
}

// One lifting step on the even samples, symmetric extension on both edges.
void lift_even(double* x, size_t n, double c) {
  if (n >= 2) x[0] += 2.0 * c * x[1];
  for (size_t i = 2; i + 1 < n; i += 2) x[i] += c * (x[i - 1] + x[i + 1]);
  if (n % 2 == 1 && n >= 3) x[n - 1] += 2.0 * c * x[n - 2];
}

void scale(double* x, size_t n, double even_factor, double odd_factor) {
  for (size_t i = 0; i < n; i += 2) x[i] *= even_factor;
  for (size_t i = 1; i < n; i += 2) x[i] *= odd_factor;
}

// Batched counterparts on an SoA tile (sample-major, nb lanes per sample).
// Each helper mirrors its scalar sibling above exactly: same coefficients,
// same operation order per lane, so results are bit-identical. The lane
// loops are trivially independent and vectorize.

void lift_odd_batch(double* t, size_t n, size_t nb, double c) {
  for (size_t i = 1; i + 1 < n; i += 2) {
    double* xi = t + i * nb;
    const double* xm = t + (i - 1) * nb;
    const double* xp = t + (i + 1) * nb;
    for (size_t j = 0; j < nb; ++j) xi[j] += c * (xm[j] + xp[j]);
  }
  if (n % 2 == 0 && n >= 2) {
    double* xi = t + (n - 1) * nb;
    const double* xm = t + (n - 2) * nb;
    for (size_t j = 0; j < nb; ++j) xi[j] += 2.0 * c * xm[j];
  }
}

void lift_even_batch(double* t, size_t n, size_t nb, double c) {
  if (n >= 2)
    for (size_t j = 0; j < nb; ++j) t[j] += 2.0 * c * t[nb + j];
  for (size_t i = 2; i + 1 < n; i += 2) {
    double* xi = t + i * nb;
    const double* xm = t + (i - 1) * nb;
    const double* xp = t + (i + 1) * nb;
    for (size_t j = 0; j < nb; ++j) xi[j] += c * (xm[j] + xp[j]);
  }
  if (n % 2 == 1 && n >= 3) {
    double* xi = t + (n - 1) * nb;
    const double* xm = t + (n - 2) * nb;
    for (size_t j = 0; j < nb; ++j) xi[j] += 2.0 * c * xm[j];
  }
}

}  // namespace

void deinterleave_batch(const double* t, size_t n, size_t nb, double* out) {
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i)
    for (size_t j = 0; j < nb; ++j) out[i * nb + j] = t[2 * i * nb + j];
  for (size_t i = 0; i < n - na; ++i)
    for (size_t j = 0; j < nb; ++j)
      out[(na + i) * nb + j] = t[(2 * i + 1) * nb + j];
}

void interleave_batch(const double* t, size_t n, size_t nb, double* out) {
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i)
    for (size_t j = 0; j < nb; ++j) out[2 * i * nb + j] = t[i * nb + j];
  for (size_t i = 0; i < n - na; ++i)
    for (size_t j = 0; j < nb; ++j)
      out[(2 * i + 1) * nb + j] = t[(na + i) * nb + j];
}

double* cdf97_analysis_batch(double* tile, size_t n, size_t nb, double* scratch) {
  if (n < 2 || nb == 0) return tile;

  lift_odd_batch(tile, n, nb, kAlpha);
  lift_even_batch(tile, n, nb, kBeta);
  lift_odd_batch(tile, n, nb, kGamma);
  lift_even_batch(tile, n, nb, kDelta);
  // Scaling fused into the de-interleave sweep (one multiply per element
  // either way — still bit-identical to scale-then-deinterleave), and the
  // result stays in `scratch` so no copy-back sweep is needed.
  const size_t na = approx_len(n);
  const double inv_zeta = 1.0 / kZeta;
  for (size_t i = 0; i < na; ++i)
    for (size_t j = 0; j < nb; ++j)
      scratch[i * nb + j] = tile[2 * i * nb + j] * kZeta;
  for (size_t i = 0; i < n - na; ++i)
    for (size_t j = 0; j < nb; ++j)
      scratch[(na + i) * nb + j] = tile[(2 * i + 1) * nb + j] * inv_zeta;
  return scratch;
}

double* cdf97_synthesis_batch(double* tile, size_t n, size_t nb, double* scratch) {
  if (n < 2 || nb == 0) return tile;

  // Re-interleave with the inverse scaling fused in; lifting then runs on
  // `scratch`, which holds the result.
  const size_t na = approx_len(n);
  const double inv_zeta = 1.0 / kZeta;
  for (size_t i = 0; i < na; ++i)
    for (size_t j = 0; j < nb; ++j)
      scratch[2 * i * nb + j] = tile[i * nb + j] * inv_zeta;
  for (size_t i = 0; i < n - na; ++i)
    for (size_t j = 0; j < nb; ++j)
      scratch[(2 * i + 1) * nb + j] = tile[(na + i) * nb + j] * kZeta;
  lift_even_batch(scratch, n, nb, -kDelta);
  lift_odd_batch(scratch, n, nb, -kGamma);
  lift_even_batch(scratch, n, nb, -kBeta);
  lift_odd_batch(scratch, n, nb, -kAlpha);
  return scratch;
}

void cdf97_analysis(double* x, size_t n, double* scratch) {
  if (n < 2) return;

  lift_odd(x, n, kAlpha);
  lift_even(x, n, kBeta);
  lift_odd(x, n, kGamma);
  lift_even(x, n, kDelta);
  scale(x, n, kZeta, 1.0 / kZeta);

  // De-interleave: evens (approximation) first, odds (detail) after.
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i) scratch[i] = x[2 * i];
  for (size_t i = 0; i < n - na; ++i) scratch[na + i] = x[2 * i + 1];
  std::copy(scratch, scratch + n, x);
}

void cdf97_synthesis(double* x, size_t n, double* scratch) {
  if (n < 2) return;

  // Re-interleave.
  const size_t na = approx_len(n);
  for (size_t i = 0; i < na; ++i) scratch[2 * i] = x[i];
  for (size_t i = 0; i < n - na; ++i) scratch[2 * i + 1] = x[na + i];
  std::copy(scratch, scratch + n, x);

  scale(x, n, 1.0 / kZeta, kZeta);
  lift_even(x, n, -kDelta);
  lift_odd(x, n, -kGamma);
  lift_even(x, n, -kBeta);
  lift_odd(x, n, -kAlpha);
}

size_t num_levels(size_t n) {
  if (n < 8) return 0;
  size_t log2n = 0;
  while ((size_t(1) << (log2n + 1)) <= n) ++log2n;
  return std::min<size_t>(6, log2n - 2);
}

}  // namespace sperr::wavelet
