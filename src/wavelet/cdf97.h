#pragma once

// CDF 9/7 biorthogonal wavelet, lifting implementation (Daubechies &
// Sweldens factorization) with whole-point symmetric boundary handling and
// approximately unit-norm basis scaling, following the QccPack formulation
// the paper borrows (§III-A). Near-orthogonality + unit norm mean the L2
// error injected into coefficients during coding is approximately the L2
// error of the reconstruction — the property SPERR's design leans on.
//
// These routines operate on one contiguous line. The analysis output is
// de-interleaved: approximation (low-pass) coefficients occupy the front
// (n+1)/2 slots, detail (high-pass) coefficients the back n/2 slots.

#include <cstddef>

namespace sperr::wavelet {

/// Lifting constants of the CDF 9/7 factorization.
inline constexpr double kAlpha = -1.58613434205992;
inline constexpr double kBeta = -0.0529801185729;
inline constexpr double kGamma = 0.8829110755309;
inline constexpr double kDelta = 0.4435068520439;
inline constexpr double kZeta = 1.1496043988602;  ///< scaling (approx unit norm)

/// Number of approximation coefficients a length-n line produces.
constexpr size_t approx_len(size_t n) { return (n + 1) / 2; }

/// One forward transform pass on line x[0..n-1]; output de-interleaved.
/// `scratch` must hold at least n doubles. n >= 1 (n < 2 is a no-op).
void cdf97_analysis(double* x, size_t n, double* scratch);

/// Inverse of cdf97_analysis (exact up to floating-point rounding).
void cdf97_synthesis(double* x, size_t n, double* scratch);

/// Batched forward pass on `nb` lines of length `n` stored as an SoA tile:
/// tile[i * nb + j] is sample i of line j, so every lifting step is a
/// contiguous, independent sweep over the nb lanes and auto-vectorizes.
/// Performs per lane exactly the operations of cdf97_analysis — output is
/// bit-identical to nb per-line calls. `scratch` must hold n * nb doubles.
/// Returns the buffer holding the result (`scratch`, or `tile` for no-op
/// lines); both buffers are clobbered.
double* cdf97_analysis_batch(double* tile, size_t n, size_t nb, double* scratch);

/// Inverse of cdf97_analysis_batch; bit-identical to per-line synthesis.
/// Same result-buffer convention.
double* cdf97_synthesis_batch(double* tile, size_t n, size_t nb, double* scratch);

/// SoA-tile de-interleave / re-interleave (evens to the front lanes-wise),
/// shared by every batched kernel. Writes the permuted tile to `out`
/// (n * nb doubles, no overlap with `tile`).
void deinterleave_batch(const double* tile, size_t n, size_t nb, double* out);
void interleave_batch(const double* tile, size_t n, size_t nb, double* out);

/// Dyadic level policy from the paper: min(6, floor(log2 n) - 2), i.e. no
/// transform for lines shorter than 8 samples.
size_t num_levels(size_t n);

}  // namespace sperr::wavelet
