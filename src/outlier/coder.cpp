#include "outlier/coder.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"
#include "common/byteio.h"

namespace sperr::outlier {

namespace {

constexpr uint16_t kMagic = 0x4f43;  // "OC"

struct StreamHeader {
  static constexpr size_t kBytes = 2 + 8 + 4 + 8;
  double t = 0.0;
  int32_t n_max = -1;  ///< -1 => no outliers, empty payload
  uint64_t nbits = 0;
};

/// Split a range in half: first child gets ceil(len/2). Mirrors the SPECK
/// box split so both coders share the same deterministic zoom-in shape.
struct Range {
  uint64_t start = 0;
  uint64_t len = 0;
};

inline void split_range(const Range& r, Range& a, Range& b) {
  const uint64_t half = (r.len + 1) / 2;
  a = {r.start, half};
  b = {r.start + half, r.len - half};
}

inline uint32_t range_max_depth(uint64_t n) {
  uint32_t d = 1;
  while ((uint64_t(1) << d) < n) ++d;
  return d + 2;
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

class Encoder {
 public:
  Encoder(std::vector<Outlier> outliers, uint64_t array_len, double t)
      : outliers_(std::move(outliers)), array_len_(array_len), t_(t) {
    std::sort(outliers_.begin(), outliers_.end(),
              [](const Outlier& a, const Outlier& b) { return a.pos < b.pos; });
    mags_.reserve(outliers_.size());
    negs_.reserve(outliers_.size());
    double max_mag = 0.0;
    for (const auto& o : outliers_) {
      const double m = std::fabs(o.corr);
      mags_.push_back(m);
      negs_.push_back(o.corr < 0.0);
      max_mag = std::max(max_mag, m);
    }
    // Listing 1 line 4: the largest n >= 0 with 2^n * t < max |corr|.
    n_max_ = -1;
    if (!outliers_.empty()) {
      n_max_ = 0;
      while (std::ldexp(t_, n_max_ + 1) < max_mag) ++n_max_;
    }
  }

  std::vector<uint8_t> run(EncodeStats* stats) {
    if (n_max_ >= 0) {
      lis_.resize(range_max_depth(array_len_) + 1);
      lis_[0].push_back({Range{0, array_len_}, 0, 0, uint32_t(outliers_.size()), -1.0});
      for (int32_t n = n_max_; n >= 0; --n) {
        const double thrd = std::ldexp(t_, n);
        sorting_pass(thrd);
        refinement_pass(thrd);
      }
    }

    std::vector<uint8_t> out;
    put_u16(out, kMagic);
    put_f64(out, t_);
    put_u32(out, uint32_t(n_max_));
    put_u64(out, bw_.bit_count());
    const auto payload = bw_.take();
    out.insert(out.end(), payload.begin(), payload.end());

    if (stats) {
      stats->payload_bits = bit_count_;
      stats->num_outliers = outliers_.size();
    }
    return out;
  }

 private:
  /// A set in the LIS: an index range plus the slice [lo, hi) of the sorted
  /// outlier array that falls inside it, and a lazily computed max |corr|.
  struct SetEntry {
    Range range;
    uint32_t depth;
    uint32_t lo, hi;
    double max_mag;
  };

  struct SigEntry {
    uint32_t outlier_idx;
    double residual;
  };

  void put(bool bit) {
    bw_.put(bit);
    ++bit_count_;
  }

  void sorting_pass(double thrd) {
    // Listing 2 line 1: sets in increasing order of size (deepest bucket
    // first); children spawned by Code() land in deeper, already-finished
    // buckets, so each LIS set is processed exactly once per pass.
    for (size_t d = lis_.size(); d-- > 0;) {
      auto pending = std::move(lis_[d]);
      lis_[d].clear();
      for (auto& e : pending) process(e, thrd);
    }
  }

  /// Examine one set (Listing 2's Process). `known_sig` marks the deducible
  /// case — a second child whose sibling tested insignificant under a
  /// significant parent — for which no bit is emitted. Returns significance.
  bool process(SetEntry& e, double thrd, bool known_sig = false) {
    if (e.max_mag < 0.0) {
      e.max_mag = 0.0;
      for (uint32_t i = e.lo; i < e.hi; ++i) e.max_mag = std::max(e.max_mag, mags_[i]);
    }
    const bool sig = known_sig || e.max_mag > thrd;
    if (!known_sig) put(sig);  // Listing 2 line 3
    if (!sig) {
      lis_[e.depth].push_back(e);
      return false;
    }
    if (e.range.len == 1) {
      // A single significant point: emit its sign and move it to LNSP.
      // (e.lo indexes the unique outlier at this position.)
      put(negs_[e.lo]);  // Listing 2 line 6
      lnsp_.push_back({e.lo, mags_[e.lo]});
      return true;
    }
    // Listing 2, Code(S): split and process both halves immediately.
    Range a, b;
    split_range(e.range, a, b);
    const uint32_t mid = partition_point(e.lo, e.hi, b.start);
    SetEntry ca{a, e.depth + 1, e.lo, mid, -1.0};
    SetEntry cb{b, e.depth + 1, mid, e.hi, -1.0};
    const bool first_sig = process(ca, thrd);
    process(cb, thrd, !first_sig);
    return true;
  }

  /// First outlier index in [lo, hi) whose position is >= split.
  [[nodiscard]] uint32_t partition_point(uint32_t lo, uint32_t hi, uint64_t split) const {
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (outliers_[mid].pos < split)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  void refinement_pass(double thrd) {
    // Listing 3: refine previously significant points, then quantize the
    // newly found ones by subtracting the current threshold.
    for (auto& p : lsp_) {
      const bool bit = p.residual > thrd;
      put(bit);
      if (bit) p.residual -= thrd;
    }
    for (auto& p : lnsp_) p.residual -= thrd;
    lsp_.insert(lsp_.end(), lnsp_.begin(), lnsp_.end());
    lnsp_.clear();
  }

  std::vector<Outlier> outliers_;  // sorted by position
  uint64_t array_len_;
  double t_;
  std::vector<double> mags_;
  std::vector<uint8_t> negs_;
  int32_t n_max_ = -1;
  size_t bit_count_ = 0;

  std::vector<std::vector<SetEntry>> lis_;
  std::vector<SigEntry> lsp_;
  std::vector<SigEntry> lnsp_;
  BitWriter bw_;
};

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

class Decoder {
 public:
  Decoder(BitReader br, uint64_t array_len, double t, int32_t n_max)
      : br_(br), array_len_(array_len), t_(t), n_max_(n_max) {}

  void run(std::vector<Outlier>& out) {
    if (n_max_ >= 0) {
      lis_.resize(range_max_depth(array_len_) + 1);
      lis_[0].push_back({Range{0, array_len_}, 0});
      for (int32_t n = n_max_; n >= 0 && !done_; --n) {
        const double thrd = std::ldexp(t_, n);
        sorting_pass(thrd);
        if (done_) break;
        refinement_pass(thrd);
      }
    }
    out.clear();
    out.reserve(lsp_.size() + lnsp_.size());
    auto emit = [&](const SigEntry& p) {
      out.push_back({p.pos, p.negative ? -p.value : p.value});
    };
    for (const auto& p : lsp_) emit(p);
    for (const auto& p : lnsp_) emit(p);
    std::sort(out.begin(), out.end(),
              [](const Outlier& a, const Outlier& b) { return a.pos < b.pos; });
  }

 private:
  struct SetEntry {
    Range range;
    uint32_t depth;
  };

  struct SigEntry {
    uint64_t pos;
    double value;
    bool negative;
  };

  [[nodiscard]] bool get(bool& bit) {
    bit = br_.get();
    if (br_.exhausted()) {
      done_ = true;
      return false;
    }
    return true;
  }

  void sorting_pass(double thrd) {
    for (size_t d = lis_.size(); d-- > 0;) {
      auto pending = std::move(lis_[d]);
      lis_[d].clear();
      for (auto& e : pending) {
        process(e, thrd);
        if (done_) return;
      }
    }
  }

  bool process(SetEntry& e, double thrd, bool known_sig = false) {
    bool sig = true;
    if (!known_sig && !get(sig)) return false;
    if (!sig) {
      lis_[e.depth].push_back(e);
      return false;
    }
    if (e.range.len == 1) {
      bool negative;
      if (!get(negative)) return true;
      lnsp_.push_back({e.range.start, 1.5 * thrd, negative});
      return true;
    }
    Range a, b;
    split_range(e.range, a, b);
    SetEntry ca{a, e.depth + 1};
    SetEntry cb{b, e.depth + 1};
    const bool first_sig = process(ca, thrd);
    if (!done_) process(cb, thrd, !first_sig);
    return true;
  }

  void refinement_pass(double thrd) {
    for (auto& p : lsp_) {
      bool bit;
      if (!get(bit)) return;
      p.value += bit ? thrd / 2.0 : -thrd / 2.0;
    }
    lsp_.insert(lsp_.end(), lnsp_.begin(), lnsp_.end());
    lnsp_.clear();
  }

  BitReader br_;
  uint64_t array_len_;
  double t_;
  int32_t n_max_;
  bool done_ = false;

  std::vector<std::vector<SetEntry>> lis_;
  std::vector<SigEntry> lsp_;
  std::vector<SigEntry> lnsp_;
};

}  // namespace

std::vector<uint8_t> encode(std::vector<Outlier> outliers,
                            uint64_t array_len,
                            double t,
                            EncodeStats* stats) {
  Encoder enc(std::move(outliers), array_len, t);
  return enc.run(stats);
}

Status decode(const uint8_t* stream,
              size_t nbytes,
              uint64_t array_len,
              std::vector<Outlier>& out) {
  ByteReader hr(stream, nbytes);
  if (hr.u16() != kMagic) return Status::corrupt_stream;
  const double t = hr.f64();
  const int32_t n_max = int32_t(hr.u32());
  const uint64_t nbits = hr.u64();
  if (!hr.ok()) return Status::truncated_stream;
  if (n_max >= 0 && !(t > 0.0)) return Status::corrupt_stream;

  const size_t payload_bytes = nbytes - hr.pos();
  if (payload_bytes * 8 < nbits) return Status::truncated_stream;

  BitReader br(stream + hr.pos(), payload_bytes, nbits);
  Decoder dec(br, array_len, t, n_max);
  dec.run(out);
  return Status::ok;
}

}  // namespace sperr::outlier
