#pragma once

// SPECK-inspired outlier coder (paper §IV, Listings 1-3). Records, for every
// data point whose wavelet reconstruction misses the original by more than
// the PWE tolerance t, its exact position and a correction value quantized to
// within t/2. Multi-dimensional inputs are linearized to 1-D before coding
// (paper §IV-C: outlier positions carry essentially no spatial correlation,
// so nothing is lost by flattening); sets are split by repeated binary
// halving of index ranges.
//
// Every output bit is one of: a set-significance test, an outlier sign, or a
// refinement direction — exactly the three bit types §IV-B enumerates.

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::outlier {

/// One outlier: position within the linearized array and the correction that
/// would restore the original value exactly (corr = x - x_reconstructed).
struct Outlier {
  uint64_t pos = 0;
  double corr = 0.0;

  constexpr bool operator==(const Outlier&) const = default;
};

struct EncodeStats {
  size_t payload_bits = 0;
  size_t num_outliers = 0;
};

/// Encode outlier tuples against tolerance t (> 0) over an array of length
/// `array_len`. Outliers need not be sorted; positions must be unique and
/// < array_len, and each |corr| must exceed t (they would not be outliers
/// otherwise). The returned stream is self-contained (carries t and the top
/// threshold exponent).
std::vector<uint8_t> encode(std::vector<Outlier> outliers,
                            uint64_t array_len,
                            double t,
                            EncodeStats* stats = nullptr);

/// Decode a stream produced by encode(). Reconstructed positions are exact;
/// each reconstructed correction satisfies |corr_decoded - corr_true| <= t/2.
Status decode(const uint8_t* stream,
              size_t nbytes,
              uint64_t array_len,
              std::vector<Outlier>& out);

}  // namespace sperr::outlier
