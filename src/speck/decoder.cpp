#include "speck/decoder.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"

namespace sperr::speck {

namespace {

struct SetEntry {
  Box box;
  uint32_t depth;
};

class Decoder {
 public:
  Decoder(BitReader br, Dims dims, const Header& hdr)
      : br_(br), dims_(dims), hdr_(hdr) {}

  Status run(double* coeffs, DecodeStats* stats) {
    const size_t n = dims_.total();
    value_.assign(n, 0.0);
    neg_.assign(n, 0);

    if (hdr_.n_max >= 0) {
      lis_.resize(max_depth(dims_) + 1);
      Box root;
      root.nx = uint32_t(dims_.x);
      root.ny = uint32_t(dims_.y);
      root.nz = uint32_t(dims_.z);
      lis_[0].push_back({root, 0});

      for (int32_t p = hdr_.n_max; p >= 0 && !done_; --p) {
        const double thrd = std::ldexp(1.0, p);
        sorting_pass(thrd);
        if (done_) break;
        refinement_pass(thrd);
      }
    }

    for (size_t i = 0; i < n; ++i)
      coeffs[i] = (neg_[i] ? -value_[i] : value_[i]) * hdr_.q;

    if (stats) {
      stats->bits_consumed = br_.bits_read();
      stats->significant_count = lsp_.size() + lnsp_.size();
      stats->truncated = done_;
    }
    return Status::ok;
  }

 private:
  [[nodiscard]] bool get(bool& bit) {
    bit = br_.get();
    if (br_.exhausted()) {
      done_ = true;
      return false;
    }
    return true;
  }

  void sorting_pass(double thrd) {
    for (size_t d = lis_.size(); d-- > 0;) {
      auto pending = std::move(lis_[d]);
      lis_[d].clear();
      for (auto& e : pending) {
        process(e, thrd);
        if (done_) {
          // Preserve the rest for consistency (decoding ends regardless).
          return;
        }
      }
    }
  }

  /// Mirror of the encoder's process(), including the deducible-significance
  /// case where the last child of a significant parent with all-insignificant
  /// siblings carries no significance bit. Returns set significance.
  bool process(SetEntry& e, double thrd, bool known_sig = false) {
    bool sig = true;
    if (!known_sig && !get(sig)) return false;
    if (!sig) {
      lis_[e.depth].push_back(e);
      return false;
    }
    if (e.box.is_single()) {
      bool negative;
      if (!get(negative)) return true;
      const uint64_t idx = dims_.index(e.box.x, e.box.y, e.box.z);
      neg_[idx] = negative;
      value_[idx] = 1.5 * thrd;  // center of (thrd, 2*thrd]
      lnsp_.push_back(idx);
      return true;
    }
    Box children[8];
    const int nc = split_box(e.box, children);
    bool any_sig = false;
    for (int i = 0; i < nc && !done_; ++i) {
      SetEntry child{children[i], e.depth + 1};
      const bool deducible = (i == nc - 1) && !any_sig;
      any_sig |= process(child, thrd, deducible);
    }
    return true;
  }

  void refinement_pass(double thrd) {
    for (uint64_t idx : lsp_) {
      bool bit;
      if (!get(bit)) return;
      value_[idx] += bit ? thrd / 2.0 : -thrd / 2.0;
    }
    lsp_.insert(lsp_.end(), lnsp_.begin(), lnsp_.end());
    lnsp_.clear();
  }

  BitReader br_;
  Dims dims_;
  Header hdr_;
  bool done_ = false;

  std::vector<double> value_;
  std::vector<uint8_t> neg_;
  std::vector<std::vector<SetEntry>> lis_;
  std::vector<uint64_t> lsp_;
  std::vector<uint64_t> lnsp_;
};

}  // namespace

Status decode(const uint8_t* stream,
              size_t nbytes,
              Dims dims,
              double* coeffs,
              DecodeStats* stats) {
  ByteReader hr(stream, nbytes);
  Header hdr;
  if (const Status s = hdr.deserialize(hr); s != Status::ok) return s;

  // A payload shorter than the header promises is still decodable: the
  // stream is embedded, so we clamp to the bits present (prefix decode).
  const size_t payload_bytes = nbytes - hr.pos();
  const uint64_t nbits = std::min<uint64_t>(hdr.nbits, payload_bytes * 8);

  BitReader br(stream + hr.pos(), payload_bytes, nbits);
  Decoder dec(br, dims, hdr);
  return dec.run(coeffs, stats);
}

}  // namespace sperr::speck
