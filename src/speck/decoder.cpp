// Production SPECK decoder: flattened counterpart of encoder.cpp. The set
// hierarchy is precomputed once into the SetTree (identical to the
// encoder's, since it depends only on the extents), so the per-plane
// traversal walks packed node ids instead of re-deriving box splits, and
// refinement-pass bits are consumed word-at-a-time. Mirrors the reference
// decoder's traversal (including the deducible-significance rule and
// truncated-stream semantics) bit for bit.
//
// Significant-coefficient state lives in LSP order, not coefficient order:
// parallel arrays of sign-tagged indices and reconstruction values appended
// at discovery. The refinement pass — the dominant cost at deep bitplanes —
// then updates a contiguous value array instead of scattering into a
// dims.total()-sized buffer, and the final coefficient write-out is a single
// scatter. The per-entry arithmetic (1.5*thrd seed, +/- thrd/2 refinements)
// is unchanged, so reconstructions stay bit-identical to the reference.

#include "speck/decoder.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"
#include "speck/settree.h"

namespace sperr::speck {

namespace {

class FastDecoder {
 public:
  FastDecoder(BitReader br, Dims dims, const Header& hdr)
      : br_(br), dims_(dims), hdr_(hdr) {}

  Status run(double* coeffs, DecodeStats* stats) {
    const size_t n = dims_.total();

    if (hdr_.n_max >= 0) {
      tree_.build(dims_);
      lis_.resize(max_depth(dims_) + 1);
      lis_[0].push_back(0);  // root node id

      for (int32_t p = hdr_.n_max; p >= 0 && !done_; --p) {
        const double thrd = std::ldexp(1.0, p);
        sorting_pass(thrd);
        if (done_) break;
        refinement_pass(thrd);
      }
    }

    // Dead-zone coefficients are exact zeros; scatter the refined values
    // over them. Same per-element expression as the reference's write-out.
    std::fill(coeffs, coeffs + n, 0.0);
    auto emit = [&](const std::vector<uint32_t>& sidx,
                    const std::vector<double>& val) {
      for (size_t j = 0; j < sidx.size(); ++j) {
        const uint32_t idx = sidx[j] & kIdxMask;
        coeffs[idx] = (sidx[j] >> 31 ? -val[j] : val[j]) * hdr_.q;
      }
    };
    emit(lsp_sidx_, lsp_val_);
    emit(lnsp_sidx_, lnsp_val_);

    if (stats) {
      stats->bits_consumed = br_.bits_read();
      stats->significant_count = lsp_sidx_.size() + lnsp_sidx_.size();
      stats->truncated = done_;
    }
    return Status::ok;
  }

 private:
  static constexpr uint32_t kIdxMask = 0x7fffffffu;  ///< sign rides in bit 31

  struct Frame {
    uint32_t node;
    uint8_t next;
    bool any_sig;
  };

  [[nodiscard]] bool get(bool& bit) {
    bit = br_.get();
    if (br_.exhausted()) {
      done_ = true;
      return false;
    }
    return true;
  }

  void sorting_pass(double thrd) {
    for (size_t d = lis_.size(); d-- > 0;) {
      pending_.clear();
      pending_.swap(lis_[d]);
      for (uint32_t id : pending_) {
        process_entry(id, uint32_t(d), thrd);
        if (done_) return;
      }
    }
  }

  /// Mirror of the encoder's process_entry(): significance bits come from
  /// the stream instead of the max tree; everything else — DFS order, LIS
  /// bucketing, the deducible-last-child rule, stop-on-exhaustion — is the
  /// same state machine.
  void process_entry(uint32_t id, uint32_t depth, double thrd) {
    bool sig;
    if (!get(sig)) return;
    if (!sig) {
      lis_[depth].push_back(id);
      return;
    }
    if (tree_.is_leaf(id)) {
      found_significant(tree_.coeff_index(id), thrd);
      return;
    }
    frames_.clear();
    frames_.push_back({id, 0, false});
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      const uint32_t nc = tree_.child_count(f.node);
      if (f.next == nc) {
        frames_.pop_back();
        continue;
      }
      const uint32_t child = tree_.first_child(f.node) + f.next;
      const bool last = ++f.next == nc;
      const bool deducible = last && !f.any_sig;
      bool csig = true;
      if (!deducible && !get(csig)) return;
      f.any_sig |= csig;
      if (!csig) {
        lis_[depth + frames_.size()].push_back(child);
        continue;
      }
      if (tree_.is_leaf(child)) {
        found_significant(tree_.coeff_index(child), thrd);
        if (done_) return;
        continue;
      }
      frames_.push_back({child, 0, false});
    }
  }

  void found_significant(uint32_t idx, double thrd) {
    bool negative;
    if (!get(negative)) return;  // sign bit missing: entry dropped, as reference
    lnsp_sidx_.push_back(idx | (uint32_t(negative) << 31));
    lnsp_val_.push_back(1.5 * thrd);  // center of (thrd, 2*thrd]
  }

  void refinement_pass(double thrd) {
    // Word-batched bit consumption over the contiguous value array. Stops
    // exactly where the per-bit reference does — the first entry whose bit
    // is missing gets no update and latches `done_`.
    size_t i = 0;
    const size_t count = lsp_val_.size();
    while (i < count) {
      const size_t avail = br_.bits_left();
      if (avail == 0) {
        done_ = true;
        return;
      }
      const unsigned take = unsigned(std::min<size_t>({64, count - i, avail}));
      uint64_t word = br_.get_bits(take);
      for (unsigned b = 0; b < take; ++b, word >>= 1)
        lsp_val_[i++] += (word & 1u) ? thrd / 2.0 : -thrd / 2.0;
    }
    lsp_sidx_.insert(lsp_sidx_.end(), lnsp_sidx_.begin(), lnsp_sidx_.end());
    lsp_val_.insert(lsp_val_.end(), lnsp_val_.begin(), lnsp_val_.end());
    lnsp_sidx_.clear();
    lnsp_val_.clear();
  }

  BitReader br_;
  Dims dims_;
  Header hdr_;
  bool done_ = false;

  SetTree tree_;  ///< structure only (planes are the encoder's side)
  std::vector<std::vector<uint32_t>> lis_;  ///< packed node ids, by depth
  std::vector<uint32_t> pending_;
  std::vector<Frame> frames_;
  std::vector<uint32_t> lsp_sidx_;  ///< sign<<31 | coefficient index
  std::vector<double> lsp_val_;     ///< reconstruction magnitude, scaled units
  std::vector<uint32_t> lnsp_sidx_;
  std::vector<double> lnsp_val_;
};

}  // namespace

Status decode(const uint8_t* stream,
              size_t nbytes,
              Dims dims,
              double* coeffs,
              DecodeStats* stats) {
  // Node ids in the flattened tree are uint32 (and coefficient indices carry
  // their sign in bit 31); beyond this fall back to the reference coder
  // (mirrors speck::encode).
  if (dims.total() >= (size_t(1) << 31))
    return decode_reference(stream, nbytes, dims, coeffs, stats);

  ByteReader hr(stream, nbytes);
  Header hdr;
  if (const Status s = hdr.deserialize(hr); s != Status::ok) return s;

  // A payload shorter than the header promises is still decodable: the
  // stream is embedded, so we clamp to the bits present (prefix decode).
  const size_t payload_bytes = nbytes - hr.pos();
  const uint64_t nbits = std::min<uint64_t>(hdr.nbits, payload_bytes * 8);

  BitReader br(stream + hr.pos(), payload_bytes, nbits);
  FastDecoder dec(br, dims, hdr);
  return dec.run(coeffs, stats);
}

}  // namespace sperr::speck
