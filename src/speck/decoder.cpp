// Production SPECK decoder: flattened counterpart of encoder.cpp. The set
// hierarchy is precomputed once into the SetTree (identical to the
// encoder's, since it depends only on the extents), so the per-plane
// traversal walks packed node ids instead of re-deriving box splits.
// Mirrors the reference decoder's traversal (including the
// deducible-significance rule and truncated-stream semantics) bit for bit.
//
// The batch structure matches the encoder's sweeps:
//   * sorting passes skip runs of 0-bits (still-insignificant sets) with a
//     single peek_zero_run + bulk re-list instead of a get() per set;
//   * refinement passes gather the pass's bits into 64-wide words first,
//     then apply the +/- thrd/2 updates over the contiguous value array —
//     element-independent work that the intra-chunk parallel mode (threads
//     > 1) partitions into fixed contiguous lanes, as it does the final
//     coefficient scatter. The sorting pass itself is bit-serial by nature
//     (each bit's meaning depends on every bit before it), so parallelism
//     never touches it and the output is identical at every thread count.
//
// Significant-coefficient state lives in LSP order, not coefficient order:
// parallel arrays of sign-tagged indices and reconstruction values appended
// at discovery. The refinement pass — the dominant cost at deep bitplanes —
// then updates a contiguous value array instead of scattering into a
// dims.total()-sized buffer, and the final coefficient write-out is a single
// scatter. The per-entry arithmetic (1.5*thrd seed, +/- thrd/2 refinements)
// is unchanged, so reconstructions stay bit-identical to the reference.

#include "speck/decoder.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/bitstream.h"
#include "common/threadpool.h"
#include "speck/settree.h"

namespace sperr::speck {

namespace {

/// Parallel-lane grain for the refinement apply and the final scatter;
/// below it the dispatch costs more than the loop. Output-invariant.
constexpr size_t kParallelGrain = size_t(1) << 14;

class FastDecoder {
 public:
  FastDecoder(BitReader br, Dims dims, const Header& hdr, int threads)
      : br_(br), dims_(dims), hdr_(hdr), threads_(resolve_thread_count(threads)) {}

  Status run(double* coeffs, DecodeStats* stats) {
    const size_t n = dims_.total();

    if (hdr_.n_max >= 0) {
      tree_.build(dims_);
      lis_.resize(max_depth(dims_) + 1);
      lis_[0].push_back(0);  // root node id

      for (int32_t p = hdr_.n_max; p >= 0 && !done_; --p) {
        const double thrd = std::ldexp(1.0, p);
        sorting_pass(thrd);
        if (done_) break;
        refinement_pass(thrd);
      }
    }

    // Dead-zone coefficients are exact zeros; scatter the refined values
    // over them. Same per-element expression as the reference's write-out;
    // every coefficient turns significant at most once, so the indices are
    // unique and lanes never collide.
    std::fill(coeffs, coeffs + n, 0.0);
    scatter(lsp_sidx_, lsp_val_, coeffs);
    scatter(lnsp_sidx_, lnsp_val_, coeffs);

    if (stats) {
      stats->bits_consumed = br_.bits_read();
      stats->significant_count = lsp_sidx_.size() + lnsp_sidx_.size();
      stats->truncated = done_;
    }
    return Status::ok;
  }

 private:
  static constexpr uint32_t kIdxMask = 0x7fffffffu;  ///< sign rides in bit 31

  struct Frame {
    uint32_t node;
    uint8_t next;
    bool any_sig;
  };

  /// Lazily spawned worker pool: most streams never reach the parallel
  /// grain, and a pool they would not use should cost nothing.
  [[nodiscard]] TaskPool* pool() {
    if (!pool_ && threads_ > 1) pool_ = std::make_unique<TaskPool>(threads_);
    return pool_.get();
  }

  [[nodiscard]] bool get(bool& bit) {
    bit = br_.get();
    if (br_.exhausted()) {
      done_ = true;
      return false;
    }
    return true;
  }

  void sorting_pass(double thrd) {
    for (size_t d = lis_.size(); d-- > 0;) {
      pending_.clear();
      pending_.swap(lis_[d]);
      const size_t count = pending_.size();
      size_t i = 0;
      while (i < count) {
        // A run of 0-bits is a run of still-insignificant sets: skip it and
        // re-list the ids in bulk instead of a get() + push_back per set.
        const size_t run = br_.peek_zero_run(count - i);
        if (run != 0) {
          br_.skip(run);
          lis_[d].insert(lis_[d].end(), pending_.begin() + ptrdiff_t(i),
                         pending_.begin() + ptrdiff_t(i + run));
          i += run;
          if (i == count) break;
        }
        // The next bit is a 1 (significant set) or missing (stream end);
        // process_entry's first get() handles both exactly as the reference.
        process_entry(pending_[i], uint32_t(d), thrd);
        ++i;
        if (done_) return;
      }
    }
  }

  /// Mirror of the encoder's descent: significance bits come from the
  /// stream instead of the max tree; everything else — DFS order, LIS
  /// bucketing, the deducible-last-child rule, stop-on-exhaustion — is the
  /// same state machine.
  void process_entry(uint32_t id, uint32_t depth, double thrd) {
    bool sig;
    if (!get(sig)) return;
    if (!sig) {
      lis_[depth].push_back(id);
      return;
    }
    if (tree_.is_leaf(id)) {
      found_significant(tree_.coeff_index(id), thrd);
      return;
    }
    frames_.clear();
    frames_.push_back({id, 0, false});
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      const uint32_t nc = tree_.child_count(f.node);
      if (f.next == nc) {
        frames_.pop_back();
        continue;
      }
      const uint32_t child = tree_.first_child(f.node) + f.next;
      const bool last = ++f.next == nc;
      const bool deducible = last && !f.any_sig;
      bool csig = true;
      if (!deducible && !get(csig)) return;
      f.any_sig |= csig;
      if (!csig) {
        lis_[depth + frames_.size()].push_back(child);
        continue;
      }
      if (tree_.is_leaf(child)) {
        found_significant(tree_.coeff_index(child), thrd);
        if (done_) return;
        continue;
      }
      frames_.push_back({child, 0, false});
    }
  }

  void found_significant(uint32_t idx, double thrd) {
    bool negative;
    if (!get(negative)) return;  // sign bit missing: entry dropped, as reference
    lnsp_sidx_.push_back(idx | (uint32_t(negative) << 31));
    lnsp_val_.push_back(1.5 * thrd);  // center of (thrd, 2*thrd]
  }

  void refinement_pass(double thrd) {
    // Gather this pass's bits into 64-wide words (the serial, bit-consuming
    // part), then apply the updates over the contiguous value array — a
    // branch-free, element-independent loop that parallel lanes partition.
    // Stops exactly where the per-bit reference does: the first entry whose
    // bit is missing gets no update and latches `done_`.
    const size_t count = lsp_val_.size();
    const size_t take = std::min(count, br_.bits_left());
    if (take != 0) {
      const size_t nwords = (take + 63) / 64;
      ref_words_.resize(nwords);
      for (size_t w = 0; w < nwords; ++w) {
        const unsigned m = unsigned(std::min<size_t>(64, take - w * 64));
        ref_words_[w] = br_.get_bits(m);
      }
      const double half = thrd / 2.0;
      double* vals = lsp_val_.data();
      const uint64_t* words = ref_words_.data();
      auto apply = [=](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
          vals[i] += ((words[i >> 6] >> (i & 63)) & 1u) ? half : -half;
      };
      if (threads_ > 1 && take >= kParallelGrain) {
        const int L = threads_;
        pool()->run([&](int lane) {
          const LaneRange r = lane_range(take, L, lane);
          apply(r.begin, r.end);
        });
      } else {
        apply(0, take);
      }
    }
    if (take < count) {
      done_ = true;
      return;  // pass unfinished: the LNSP stays unmerged, as the reference
    }
    lsp_sidx_.insert(lsp_sidx_.end(), lnsp_sidx_.begin(), lnsp_sidx_.end());
    lsp_val_.insert(lsp_val_.end(), lnsp_val_.begin(), lnsp_val_.end());
    lnsp_sidx_.clear();
    lnsp_val_.clear();
  }

  void scatter(const std::vector<uint32_t>& sidx, const std::vector<double>& val,
               double* coeffs) {
    const double q = hdr_.q;
    auto emit = [&](size_t b, size_t e) {
      for (size_t j = b; j < e; ++j) {
        const uint32_t idx = sidx[j] & kIdxMask;
        coeffs[idx] = (sidx[j] >> 31 ? -val[j] : val[j]) * q;
      }
    };
    if (threads_ > 1 && sidx.size() >= kParallelGrain) {
      const int L = threads_;
      pool()->run([&](int lane) {
        const LaneRange r = lane_range(sidx.size(), L, lane);
        emit(r.begin, r.end);
      });
    } else {
      emit(0, sidx.size());
    }
  }

  BitReader br_;
  Dims dims_;
  Header hdr_;
  int threads_;
  std::unique_ptr<TaskPool> pool_;
  bool done_ = false;

  SetTree tree_;  ///< structure only (planes are the encoder's side)
  std::vector<std::vector<uint32_t>> lis_;  ///< packed node ids, by depth
  std::vector<uint32_t> pending_;
  std::vector<Frame> frames_;
  std::vector<uint64_t> ref_words_;  ///< per-pass gathered refinement bits
  std::vector<uint32_t> lsp_sidx_;  ///< sign<<31 | coefficient index
  std::vector<double> lsp_val_;     ///< reconstruction magnitude, scaled units
  std::vector<uint32_t> lnsp_sidx_;
  std::vector<double> lnsp_val_;
};

}  // namespace

Status decode(const uint8_t* stream,
              size_t nbytes,
              Dims dims,
              double* coeffs,
              DecodeStats* stats,
              int threads) {
  // Node ids in the flattened tree are uint32 (and coefficient indices carry
  // their sign in bit 31); beyond this fall back to the reference coder
  // (mirrors speck::encode).
  if (dims.total() >= (size_t(1) << 31))
    return decode_reference(stream, nbytes, dims, coeffs, stats);

  ByteReader hr(stream, nbytes);
  Header hdr;
  if (const Status s = hdr.deserialize(hr); s != Status::ok) return s;

  // A payload shorter than the header promises is still decodable: the
  // stream is embedded, so we clamp to the bits present (prefix decode).
  const size_t payload_bytes = nbytes - hr.pos();
  const uint64_t nbits = std::min<uint64_t>(hdr.nbits, payload_bytes * 8);

  BitReader br(stream + hr.pos(), payload_bytes, nbits);
  FastDecoder dec(br, dims, hdr, threads);
  return dec.run(coeffs, stats);
}

}  // namespace sperr::speck
