#pragma once

// SPECK encoder (paper §III-B/C). Encodes wavelet coefficients
// bitplane-by-bitplane with octree (3-D) / quadtree (2-D) set partitioning.
// Differences from the classic algorithm, following the paper:
//   * arbitrary quantization step q (coefficients are pre-scaled by 1/q and
//     integer bitplanes 2^n are coded), giving a dead zone of (-q, q) and a
//     max quantization error of q/2 for coded coefficients;
//   * the whole (transformed) domain is the root set;
//   * the output is embedded: any prefix decodes, enabling the size-bounded
//     mode by simply stopping at a bit budget.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "speck/common.h"

namespace sperr::speck {

/// Cost breakdown of one bitplane, filled by the production encoder. The
/// bit counts are properties of the stream (deterministic, compared in
/// tests); the seconds are wall-clock measurements of this plane's passes.
struct PassTiming {
  int32_t plane = 0;           ///< bitplane n (threshold 2^n)
  double sorting_s = 0.0;      ///< whole sorting pass (includes significance_s)
  double significance_s = 0.0; ///< packed max-plane scans within the sorting pass
  double refinement_s = 0.0;   ///< refinement pass
  uint64_t sorting_bits = 0;   ///< payload bits emitted by the sorting pass
  uint64_t refinement_bits = 0;///< payload bits emitted by the refinement pass
};

struct EncodeStats {
  size_t payload_bits = 0;     ///< bits in the SPECK payload (excl. header)
  size_t planes_coded = 0;     ///< bitplanes fully or partially emitted
  size_t significant_count = 0;  ///< coefficients outside the dead zone

  /// RMSE of the quantized coefficients vs the input coefficients, computed
  /// from encoder state alone. Because the CDF 9/7 basis is near-orthogonal
  /// and ~unit-norm, this estimates the *reconstruction* RMSE without any
  /// inverse transform (paper §III-A and the §VII average-error extension).
  double estimated_coeff_rmse = 0.0;

  /// Per-bitplane pass costs, top plane first (production encoder only; the
  /// reference coder leaves this empty). Feeds `bench_micro --speck_json`.
  std::vector<PassTiming> passes;

  /// Intra-chunk threads the encoder actually used (after resolving 0=auto
  /// and the serial fallbacks for budgeted / >50-plane modes).
  int threads_used = 1;
};

/// Encode `coeffs` (dims.total() values) with finest step q (> 0).
/// `budget_bits` == 0 means "all bitplanes down to q" (quality-driven / PWE
/// mode); otherwise the stream is truncated at the first operation that
/// reaches the budget (size-bounded mode).
///
/// `recon_out`, when non-null, receives the decoder-equivalent coefficient
/// reconstruction (resized to dims.total()). The encoder maintains it
/// alongside the emitted bits, so the SPERR pipeline can locate outliers
/// without decoding its own stream (paper §V-C stage 3 is just an inverse
/// transform plus a comparison). Only exact in unbudgeted mode.
///
/// `threads` enables deterministic intra-chunk parallelism: each bitplane's
/// worklists are partitioned into fixed contiguous lanes whose outputs merge
/// in lane order, so the stream is byte-identical at every thread count
/// (including to the serial engine and to encode_reference). 0 = one lane
/// per hardware thread; budgeted mode (which must stop on an exact mid-pass
/// bit) always runs serial.
std::vector<uint8_t> encode(const double* coeffs,
                            Dims dims,
                            double q,
                            size_t budget_bits = 0,
                            EncodeStats* stats = nullptr,
                            std::vector<double>* recon_out = nullptr,
                            int threads = 1);

/// The original recursive, lazily-evaluated coder (reference.cpp), kept as
/// the bit-exactness oracle for the flattened production encoder — same
/// stream bytes, same EncodeStats, for every input and mode. Differentially
/// tested in tests/test_speck_fast.cpp; the speedup is recorded by
/// `bench_micro --speck_json` (BENCH_speck.json).
std::vector<uint8_t> encode_reference(const double* coeffs,
                                      Dims dims,
                                      double q,
                                      size_t budget_bits = 0,
                                      EncodeStats* stats = nullptr,
                                      std::vector<double>* recon_out = nullptr);

}  // namespace sperr::speck
