#include "speck/raw_bitplane.h"

#include <algorithm>
#include <cmath>

#include "common/bitset.h"
#include "common/bitstream.h"
#include "common/byteio.h"

namespace sperr::speck {

namespace {

constexpr uint16_t kMagic = 0x4252;  // "RB"

}  // namespace

std::vector<uint8_t> raw_bitplane_encode(const double* coeffs, Dims dims,
                                         double q) {
  const size_t n = dims.total();
  std::vector<double> mag(n);
  PackedBits neg(n);
  double max_m = 0.0;
  for (size_t i = 0; i < n; ++i) {
    neg.set(i, std::signbit(coeffs[i]));
    mag[i] = std::fabs(coeffs[i]) / q;
    max_m = std::max(max_m, mag[i]);
  }
  int32_t n_max = -1;
  if (max_m > 1.0) {
    n_max = 0;
    while (std::ldexp(1.0, n_max + 1) < max_m) ++n_max;
  }

  BitWriter bw;
  PackedBits significant(n);
  std::vector<double> residual = mag;
  for (int32_t p = n_max; p >= 0; --p) {
    const double thrd = std::ldexp(1.0, p);
    for (size_t i = 0; i < n; ++i) {
      if (significant.get(i)) {
        // Refinement bit (same rule as SPECK's RefinementPass).
        const bool bit = residual[i] > thrd;
        bw.put(bit);
        if (bit) residual[i] -= thrd;
      } else {
        const bool sig = mag[i] > thrd;
        bw.put(sig);
        if (sig) {
          bw.put(neg.get(i));
          significant.set(i);
          residual[i] = mag[i] - thrd;
        }
      }
    }
  }

  std::vector<uint8_t> out;
  put_u16(out, kMagic);
  put_f64(out, q);
  put_u32(out, uint32_t(n_max));
  put_u64(out, bw.bit_count());
  const auto payload = bw.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

Status raw_bitplane_decode(const uint8_t* stream, size_t nbytes, Dims dims,
                           double* coeffs) {
  ByteReader hr(stream, nbytes);
  if (hr.u16() != kMagic) return Status::corrupt_stream;
  const double q = hr.f64();
  const auto n_max = int32_t(hr.u32());
  const uint64_t nbits = hr.u64();
  if (!hr.ok() || !(q > 0.0)) return Status::corrupt_stream;

  const size_t n = dims.total();
  std::vector<double> value(n, 0.0);
  PackedBits neg(n), significant(n);

  const uint64_t clamped = std::min<uint64_t>(nbits, (nbytes - hr.pos()) * 8);
  BitReader br(stream + hr.pos(), nbytes - hr.pos(), clamped);
  for (int32_t p = n_max; p >= 0 && !br.exhausted(); --p) {
    const double thrd = std::ldexp(1.0, p);
    for (size_t i = 0; i < n; ++i) {
      if (significant.get(i)) {
        const bool bit = br.get();
        if (br.exhausted()) break;
        value[i] += bit ? thrd / 2.0 : -thrd / 2.0;
      } else {
        const bool sig = br.get();
        if (br.exhausted()) break;
        if (sig) {
          const bool negative = br.get();
          if (br.exhausted()) break;
          neg.set(i, negative);
          significant.set(i);
          value[i] = 1.5 * thrd;
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i)
    coeffs[i] = (neg.get(i) ? -value[i] : value[i]) * q;
  return Status::ok;
}

}  // namespace sperr::speck
