#pragma once

// SPECK decoder: replays the encoder's set traversal with significance bits
// coming from the stream, reconstructing coefficients at the centers of
// their refined intervals (mid-riser). Tolerates truncated payloads — any
// prefix of an embedded stream yields a coarser but valid reconstruction.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "speck/common.h"

namespace sperr::speck {

struct DecodeStats {
  size_t bits_consumed = 0;
  size_t significant_count = 0;
  bool truncated = false;  ///< stream ended before the last plane finished
};

/// Decode a stream produced by speck::encode into `coeffs` (dims.total()
/// doubles, fully overwritten; dead-zone coefficients become 0).
///
/// `threads` parallelizes the data-parallel parts of the decode — the
/// refinement-pass value updates and the final coefficient scatter (the
/// sorting pass is bit-serial by nature). The output is identical at every
/// thread count: each parallel region partitions a contiguous array into
/// fixed lanes of element-independent updates. 0 = one lane per hardware
/// thread.
Status decode(const uint8_t* stream,
              size_t nbytes,
              Dims dims,
              double* coeffs,
              DecodeStats* stats = nullptr,
              int threads = 1);

/// The original recursive decoder (reference.cpp), kept as the oracle for
/// the flattened production decoder — identical output coefficients and
/// DecodeStats for every stream, including truncated and corrupt ones.
Status decode_reference(const uint8_t* stream,
                        size_t nbytes,
                        Dims dims,
                        double* coeffs,
                        DecodeStats* stats = nullptr);

}  // namespace sperr::speck
