#include "speck/settree.h"

#include <algorithm>

namespace sperr::speck {

void SetTree::build(Dims dims) {
  nodes_.clear();

  const size_t n = dims.total();
  // Leaves = n; internal nodes are ~n/7 for octree bulk, up to n-1 in the
  // all-binary-splits worst case (thin 1-D grids). Reserve for the typical
  // shape and let the vector grow for pathological ones.
  nodes_.reserve(n + n / 4 + 16);

  struct Frame {
    Box box;
    uint32_t id;
  };
  std::vector<Frame> stack;
  stack.reserve(64 * 8);

  Box root;
  root.nx = uint32_t(dims.x);
  root.ny = uint32_t(dims.y);
  root.nz = uint32_t(dims.z);
  nodes_.push_back({0, 0, 0});
  if (root.is_single()) {
    nodes_[0] = {uint32_t(dims.index(root.x, root.y, root.z)), 0, 0};
    return;
  }
  stack.push_back({root, 0});

  // Leaf children are finalized inline at parent expansion — only internal
  // children round-trip through the stack. Leaves are the bulk of the tree
  // (7/8 of an octree), so this cuts stack traffic ~8x; and since each
  // child's record is push_back'd individually, there is no bulk
  // resize/zero-fill of records that are about to be overwritten anyway.
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    Box children[8];
    const int nc = split_box(f.box, children);
    const uint32_t base = uint32_t(nodes_.size());
    nodes_[f.id].first = base;
    nodes_[f.id].nchild = uint16_t(nc);
    for (int i = 0; i < nc; ++i) {
      if (children[i].is_single())
        nodes_.push_back(
            {uint32_t(dims.index(children[i].x, children[i].y, children[i].z)),
             0, 0});
      else
        nodes_.push_back({0, 0, 0});  // structure filled at its expansion
    }
    // Reverse push so child 0 is expanded next: the whole of child 0's
    // subtree is allocated before child 1's, giving the DFS id layout.
    for (int i = nc; i-- > 0;)
      if (!children[i].is_single()) stack.push_back({children[i], base + uint32_t(i)});
  }
}

void SetTree::fill_planes(const int16_t* coeff_planes) {
  // DFS allocation puts every child after its parent, so one reverse sweep
  // sees all children before their parent.
  for (size_t i = node_count(); i-- > 0;) {
    Node& nd = nodes_[i];
    if (nd.nchild == 0) {
      nd.plane = coeff_planes[nd.first];
      continue;
    }
    const uint32_t f = nd.first;
    int16_t mx = nodes_[f].plane;
    for (uint32_t c = 1; c < nd.nchild; ++c)
      mx = std::max(mx, nodes_[f + c].plane);
    nd.plane = mx;
  }
}

}  // namespace sperr::speck
