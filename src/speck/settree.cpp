#include "speck/settree.h"

#include <algorithm>

namespace sperr::speck {

void SetTree::build(Dims dims) {
  first_.clear();
  nchild_.clear();
  plane_.clear();

  const size_t n = dims.total();
  // Leaves = n; internal nodes are ~n/7 for octree bulk, up to n-1 in the
  // all-binary-splits worst case (thin 1-D grids). Reserve for the typical
  // shape and let the vector grow for pathological ones.
  const size_t guess = n + n / 4 + 16;
  first_.reserve(guess);
  nchild_.reserve(guess);

  struct Frame {
    Box box;
    uint32_t id;
  };
  std::vector<Frame> stack;
  stack.reserve(64 * 8);

  Box root;
  root.nx = uint32_t(dims.x);
  root.ny = uint32_t(dims.y);
  root.nz = uint32_t(dims.z);
  first_.push_back(0);
  nchild_.push_back(0);
  stack.push_back({root, 0});

  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.box.is_single()) {
      first_[f.id] = uint32_t(dims.index(f.box.x, f.box.y, f.box.z));
      nchild_[f.id] = 0;
      continue;
    }
    Box children[8];
    const int nc = split_box(f.box, children);
    const uint32_t base = uint32_t(first_.size());
    first_[f.id] = base;
    nchild_[f.id] = uint8_t(nc);
    first_.resize(first_.size() + size_t(nc));
    nchild_.resize(nchild_.size() + size_t(nc));
    // Reverse push so child 0 is expanded next: the whole of child 0's
    // subtree is allocated before child 1's, giving the DFS id layout.
    for (int i = nc; i-- > 0;) stack.push_back({children[i], base + uint32_t(i)});
  }
}

void SetTree::fill_planes(const int16_t* coeff_planes) {
  plane_.resize(node_count());
  // DFS allocation puts every child after its parent, so one reverse sweep
  // sees all children before their parent.
  for (size_t i = node_count(); i-- > 0;) {
    if (nchild_[i] == 0) {
      plane_[i] = coeff_planes[first_[i]];
      continue;
    }
    const uint32_t f = first_[i];
    int16_t mx = plane_[f];
    for (uint32_t c = 1; c < nchild_[i]; ++c) mx = std::max(mx, plane_[f + c]);
    plane_[i] = mx;
  }
}

}  // namespace sperr::speck
