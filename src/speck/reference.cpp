// The original recursive SPECK coder, kept verbatim as the bit-exactness
// oracle for the flattened production coder (encoder.cpp / decoder.cpp) —
// the same role the per-line wavelet drivers play for the blocked DWT.
// Sets are materialized lazily as box entries, set maxima are computed by
// strided box scans on first test, and the set descent is recursive. Slow
// but obviously faithful to the paper's listing; tests/test_speck_fast.cpp
// holds the production coder to bit-identical streams and equal stats.

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"
#include "speck/decoder.h"
#include "speck/encoder.h"

namespace sperr::speck {

namespace {

/// A set awaiting significance in the LIS. `max_mag` caches the set's
/// maximum scaled magnitude (negative = not yet computed); computing it
/// lazily on first test keeps total work at O(N · depth) without a
/// precomputed max tree.
struct SetEntry {
  Box box;
  uint32_t depth;
  double max_mag = -1.0;
};

class RefEncoder {
 public:
  RefEncoder(const double* coeffs, Dims dims, double q, size_t budget_bits)
      : dims_(dims), q_(q), budget_(budget_bits) {
    const size_t n = dims.total();
    mag_.resize(n);
    neg_.resize(n);
    double max_m = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double c = coeffs[i];
      neg_[i] = std::signbit(c);
      const double m = std::fabs(c) / q;
      mag_[i] = m;
      mag_sq_sum_ += m * m;
      if (m > max_m) max_m = m;
    }
    // Top bitplane: the largest n >= 0 with 2^n < max magnitude. If even the
    // largest magnitude is inside the dead zone nothing is ever coded.
    n_max_ = -1;
    if (max_m > 1.0) {
      n_max_ = 0;
      while (std::ldexp(1.0, n_max_ + 1) < max_m) ++n_max_;
    }
  }

  /// Coefficient-domain RMSE of the quantization, from encoder state only:
  /// coded coefficients err by |mag - recon|, dead-zone ones by their full
  /// magnitude (they reconstruct to zero).
  [[nodiscard]] double estimated_rmse() const {
    double sq = mag_sq_sum_;  // start with everything in the dead zone...
    auto account = [&](const SigEntry& p) {
      const double m = mag_[p.idx];
      const double e = m - p.recon;
      sq += e * e - m * m;  // ...and swap coded ones to their true error
    };
    for (const auto& p : lsp_) account(p);
    for (const auto& p : lnsp_) account(p);
    const size_t n = dims_.total();
    return n ? q_ * std::sqrt(std::max(sq, 0.0) / double(n)) : 0.0;
  }

  /// Fill `out` with the reconstruction a decoder of the full stream
  /// produces (dead-zone coefficients are zero).
  void export_recon(std::vector<double>& out) const {
    out.assign(dims_.total(), 0.0);
    auto emit = [&](const SigEntry& p) {
      out[p.idx] = (neg_[p.idx] ? -p.recon : p.recon) * q_;
    };
    for (const auto& p : lsp_) emit(p);
    for (const auto& p : lnsp_) emit(p);
  }

  std::vector<uint8_t> run(EncodeStats* stats) {
    if (n_max_ >= 0) {
      lis_.resize(max_depth(dims_) + 1);
      Box root;
      root.nx = uint32_t(dims_.x);
      root.ny = uint32_t(dims_.y);
      root.nz = uint32_t(dims_.z);
      lis_[0].push_back({root, 0, -1.0});

      for (int32_t n = n_max_; n >= 0 && !budget_hit_; --n) {
        const double thrd = std::ldexp(1.0, n);
        sorting_pass(thrd);
        if (budget_hit_) break;
        refinement_pass(thrd);
      }
    }

    Header hdr;
    hdr.q = q_;
    hdr.n_max = n_max_;
    hdr.nbits = bw_.bit_count();
    if (stats) {
      stats->payload_bits = bw_.bit_count();
      stats->planes_coded = planes_;
      stats->significant_count = lsp_.size() + lnsp_.size();
      stats->estimated_coeff_rmse = estimated_rmse();
    }

    std::vector<uint8_t> out;
    out.reserve(Header::kBytes + bw_.byte_count());
    hdr.serialize(out);
    const auto payload = bw_.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  }

 private:
  struct SigEntry {
    uint64_t idx;
    double residual;  ///< remaining magnitude to refine away
    double recon;     ///< decoder-equivalent reconstruction (scaled units)
  };

  void put(bool bit) {
    bw_.put(bit);
    if (budget_ && bw_.bit_count() >= budget_) budget_hit_ = true;
  }

  [[nodiscard]] double set_max(const Box& b) const {
    double m = 0.0;
    for (uint32_t z = b.z; z < b.z + b.nz; ++z)
      for (uint32_t y = b.y; y < b.y + b.ny; ++y) {
        const size_t row = dims_.index(b.x, y, z);
        for (uint32_t x = 0; x < b.nx; ++x) m = std::max(m, mag_[row + x]);
      }
    return m;
  }

  void sorting_pass(double thrd) {
    ++planes_;
    // Smallest (deepest) sets first; children spawned by splits land in
    // deeper buckets that have already been iterated this pass, so every set
    // is examined exactly once per plane.
    for (size_t d = lis_.size(); d-- > 0;) {
      auto pending = std::move(lis_[d]);
      lis_[d].clear();
      for (auto& e : pending) {
        process(e, thrd);
        if (budget_hit_) {
          // Keep the not-yet-visited entries so state stays consistent
          // (encoding stops anyway; this matters only for stats).
          return;
        }
      }
    }
  }

  /// Examine one set. `known_sig` marks the deducible case — the last child
  /// of a significant parent whose siblings all tested insignificant — for
  /// which no significance bit is emitted (the decoder deduces it too).
  /// Returns whether the set was significant.
  bool process(SetEntry& e, double thrd, bool known_sig = false) {
    if (e.max_mag < 0.0) e.max_mag = set_max(e.box);
    const bool sig = known_sig || e.max_mag > thrd;
    if (!known_sig) {
      put(sig);
      if (budget_hit_) return sig;
    }
    if (!sig) {
      lis_[e.depth].push_back(e);
      return false;
    }
    if (e.box.is_single()) {
      const uint64_t idx = dims_.index(e.box.x, e.box.y, e.box.z);
      put(neg_[idx]);
      if (budget_hit_) return true;
      lnsp_.push_back({idx, mag_[idx], 1.5 * thrd});
      return true;
    }
    Box children[8];
    const int nc = split_box(e.box, children);
    bool any_sig = false;
    for (int i = 0; i < nc && !budget_hit_; ++i) {
      SetEntry child{children[i], e.depth + 1, -1.0};
      const bool deducible = (i == nc - 1) && !any_sig;
      any_sig |= process(child, thrd, deducible);
    }
    return true;
  }

  void refinement_pass(double thrd) {
    for (auto& p : lsp_) {
      const bool bit = p.residual > thrd;
      put(bit);
      if (budget_hit_) return;
      if (bit) p.residual -= thrd;
      p.recon += bit ? thrd / 2.0 : -thrd / 2.0;
    }
    for (auto& p : lnsp_) p.residual -= thrd;
    lsp_.insert(lsp_.end(), lnsp_.begin(), lnsp_.end());
    lnsp_.clear();
  }

  Dims dims_;
  double q_;
  size_t budget_;
  bool budget_hit_ = false;

  std::vector<double> mag_;  ///< |coeff| / q
  double mag_sq_sum_ = 0.0;
  std::vector<uint8_t> neg_;
  int32_t n_max_ = -1;
  size_t planes_ = 0;

  std::vector<std::vector<SetEntry>> lis_;
  std::vector<SigEntry> lsp_;
  std::vector<SigEntry> lnsp_;
  BitWriter bw_;
};

struct DecSetEntry {
  Box box;
  uint32_t depth;
};

class RefDecoder {
 public:
  RefDecoder(BitReader br, Dims dims, const Header& hdr)
      : br_(br), dims_(dims), hdr_(hdr) {}

  Status run(double* coeffs, DecodeStats* stats) {
    const size_t n = dims_.total();
    value_.assign(n, 0.0);
    neg_.assign(n, 0);

    if (hdr_.n_max >= 0) {
      lis_.resize(max_depth(dims_) + 1);
      Box root;
      root.nx = uint32_t(dims_.x);
      root.ny = uint32_t(dims_.y);
      root.nz = uint32_t(dims_.z);
      lis_[0].push_back({root, 0});

      for (int32_t p = hdr_.n_max; p >= 0 && !done_; --p) {
        const double thrd = std::ldexp(1.0, p);
        sorting_pass(thrd);
        if (done_) break;
        refinement_pass(thrd);
      }
    }

    for (size_t i = 0; i < n; ++i)
      coeffs[i] = (neg_[i] ? -value_[i] : value_[i]) * hdr_.q;

    if (stats) {
      stats->bits_consumed = br_.bits_read();
      stats->significant_count = lsp_.size() + lnsp_.size();
      stats->truncated = done_;
    }
    return Status::ok;
  }

 private:
  [[nodiscard]] bool get(bool& bit) {
    bit = br_.get();
    if (br_.exhausted()) {
      done_ = true;
      return false;
    }
    return true;
  }

  void sorting_pass(double thrd) {
    for (size_t d = lis_.size(); d-- > 0;) {
      auto pending = std::move(lis_[d]);
      lis_[d].clear();
      for (auto& e : pending) {
        process(e, thrd);
        if (done_) {
          // Preserve the rest for consistency (decoding ends regardless).
          return;
        }
      }
    }
  }

  /// Mirror of the encoder's process(), including the deducible-significance
  /// case where the last child of a significant parent with all-insignificant
  /// siblings carries no significance bit. Returns set significance.
  bool process(DecSetEntry& e, double thrd, bool known_sig = false) {
    bool sig = true;
    if (!known_sig && !get(sig)) return false;
    if (!sig) {
      lis_[e.depth].push_back(e);
      return false;
    }
    if (e.box.is_single()) {
      bool negative;
      if (!get(negative)) return true;
      const uint64_t idx = dims_.index(e.box.x, e.box.y, e.box.z);
      neg_[idx] = negative;
      value_[idx] = 1.5 * thrd;  // center of (thrd, 2*thrd]
      lnsp_.push_back(idx);
      return true;
    }
    Box children[8];
    const int nc = split_box(e.box, children);
    bool any_sig = false;
    for (int i = 0; i < nc && !done_; ++i) {
      DecSetEntry child{children[i], e.depth + 1};
      const bool deducible = (i == nc - 1) && !any_sig;
      any_sig |= process(child, thrd, deducible);
    }
    return true;
  }

  void refinement_pass(double thrd) {
    for (uint64_t idx : lsp_) {
      bool bit;
      if (!get(bit)) return;
      value_[idx] += bit ? thrd / 2.0 : -thrd / 2.0;
    }
    lsp_.insert(lsp_.end(), lnsp_.begin(), lnsp_.end());
    lnsp_.clear();
  }

  BitReader br_;
  Dims dims_;
  Header hdr_;
  bool done_ = false;

  std::vector<double> value_;
  std::vector<uint8_t> neg_;
  std::vector<std::vector<DecSetEntry>> lis_;
  std::vector<uint64_t> lsp_;
  std::vector<uint64_t> lnsp_;
};

}  // namespace

std::vector<uint8_t> encode_reference(const double* coeffs,
                                      Dims dims,
                                      double q,
                                      size_t budget_bits,
                                      EncodeStats* stats,
                                      std::vector<double>* recon_out) {
  RefEncoder enc(coeffs, dims, q, budget_bits);
  auto stream = enc.run(stats);
  if (recon_out) enc.export_recon(*recon_out);
  return stream;
}

Status decode_reference(const uint8_t* stream,
                        size_t nbytes,
                        Dims dims,
                        double* coeffs,
                        DecodeStats* stats) {
  ByteReader hr(stream, nbytes);
  Header hdr;
  if (const Status s = hdr.deserialize(hr); s != Status::ok) return s;

  // A payload shorter than the header promises is still decodable: the
  // stream is embedded, so we clamp to the bits present (prefix decode).
  const size_t payload_bytes = nbytes - hr.pos();
  const uint64_t nbits = std::min<uint64_t>(hdr.nbits, payload_bytes * 8);

  BitReader br(stream + hr.pos(), payload_bytes, nbits);
  RefDecoder dec(br, dims, hdr);
  return dec.run(coeffs, stats);
}

}  // namespace sperr::speck
