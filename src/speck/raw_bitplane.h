#pragma once

// Ablation baseline for SPECK: a *dense* bitplane coder with the identical
// quantization semantics (scale by 1/q, planes 2^n_max..2^0, mid-riser
// reconstruction, dead zone) but no set partitioning — every not-yet-
// significant coefficient spends one significance bit per plane. The gap
// between this coder and SPECK measures exactly what the paper's "zoom in
// from the full volume" partitioning contributes (§III-B).

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace sperr::speck {

/// Encode with the same quantization contract as speck::encode (all planes
/// down to q; no budget mode — this is an analysis tool, not a product path).
std::vector<uint8_t> raw_bitplane_encode(const double* coeffs, Dims dims, double q);

/// Decode a raw_bitplane_encode stream.
Status raw_bitplane_decode(const uint8_t* stream, size_t nbytes, Dims dims,
                           double* coeffs);

}  // namespace sperr::speck
