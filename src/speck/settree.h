#pragma once

// Flattened SPECK set-partition hierarchy. The reference coder materializes
// sets lazily as 40-byte box entries and rediscovers each set's children
// (split_box) and maximum magnitude (a strided box scan) on demand, every
// plane. This tree precomputes both, once, into contiguous SoA arrays:
//
//   * structure  — node 0 is the root (whole grid); an internal node's
//     children occupy the contiguous id range [first(i), first(i)+nchild(i))
//     in exactly the order split_box() emits them, so a traversal that walks
//     child ids reproduces the reference traversal bit for bit;
//   * magnitudes — per node, the maximum significance plane of the
//     coefficients it covers, folded bottom-up in one reverse sweep.
//
// Ids are allocated by a depth-first walk (children always follow their
// parent), which makes the bottom-up fold a reverse linear sweep and keeps a
// subtree's nodes adjacent in memory — the generalized Morton layout: for a
// power-of-two cube, leaves appear exactly in Z-order. A leaf stores its
// coefficient's linear index instead of a child range.
//
// The structure depends only on the grid extents, so encoder and decoder
// build identical trees without communicating anything.

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "speck/common.h"

namespace sperr::speck {

/// Significance plane of a dead-zone coefficient (|c|/q <= 1): tested
/// planes are n >= 0, so -1 means "never significant".
inline constexpr int16_t kDeadPlane = -1;

/// Largest representable plane: thresholds 2^n for n > 1023 overflow to
/// +inf, where even an infinite magnitude fails the strict `m > thrd` test.
inline constexpr int16_t kMaxPlane = 1023;

/// Significance plane of a scaled magnitude m = |c| / q: the largest n >= 0
/// with m > 2^n, or kDeadPlane when there is none. Matches the reference
/// coder's per-plane `m > ldexp(1.0, n)` test for every n, and its top-plane
/// search, exactly (strict inequality: m == 2^k is NOT significant at k).
inline int16_t plane_of(double m) {
  if (!(m > 1.0)) return kDeadPlane;  // dead zone; also 0 and NaN
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(m));
  __builtin_memcpy(&bits, &m, sizeof(bits));
  const int e = int((bits >> 52) & 0x7ff) - 1023;  // m > 1 => positive normal
  if (e > 1023) return kMaxPlane;                  // +inf
  const bool exact_pow2 = (bits & ((uint64_t(1) << 52) - 1)) == 0;
  return int16_t(exact_pow2 ? e - 1 : e);
}

/// The flattened set-partition tree. Node ids are uint32: callers must
/// ensure dims.total() < 2^31 (the speck::encode/decode entry points fall
/// back to the reference coder above that).
///
/// Storage is one interleaved 8-byte record per node: the sorting-pass
/// descent reads a child's structure and max plane together, so each node
/// visit touches one cache line instead of three parallel arrays.
class SetTree {
 public:
  /// Build the structure for `dims`. Deterministic and data-independent.
  void build(Dims dims);

  /// Fill per-node max planes bottom-up from per-coefficient planes
  /// (indexed by linear coefficient index). Requires build() first.
  void fill_planes(const int16_t* coeff_planes);

  [[nodiscard]] size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool is_leaf(uint32_t id) const { return nodes_[id].nchild == 0; }
  [[nodiscard]] uint32_t first_child(uint32_t id) const { return nodes_[id].first; }
  [[nodiscard]] uint32_t child_count(uint32_t id) const { return nodes_[id].nchild; }
  /// Linear coefficient index of a leaf node.
  [[nodiscard]] uint32_t coeff_index(uint32_t id) const { return nodes_[id].first; }
  [[nodiscard]] int16_t plane(uint32_t id) const { return nodes_[id].plane; }

 private:
  struct Node {
    uint32_t first;   ///< internal: first child id; leaf: coeff index
    uint16_t nchild;  ///< 0 for leaves, 2..8 otherwise
    int16_t plane;    ///< max significance plane over the set (fill_planes)
  };
  static_assert(sizeof(Node) == 8);

  std::vector<Node> nodes_;
};

}  // namespace sperr::speck
