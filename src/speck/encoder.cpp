// Production SPECK encoder: flattened, batch-friendly rewrite of the
// reference coder (reference.cpp), emitting bit-identical streams.
//
//   * The set hierarchy and every set's maximum significance plane are
//     precomputed once into the contiguous SetTree (settree.h) — the
//     per-plane significance test collapses from a lazy strided box scan
//     plus a double compare to one int16 load and compare.
//   * The recursive set descent becomes an iterative worklist: LIS buckets
//     hold packed 4-byte node ids instead of 40-byte box entries, and the
//     within-pass descent runs on an explicit frame stack in DFS order (the
//     reference's recursion order), preserving the deducible-significance
//     rule bit for bit.
//   * Refinement-pass bits are precomputed: when a coefficient turns
//     significant at plane p, its entire future refinement bit sequence is
//     captured as one integer (see found_significant for the derivation
//     from the reference's strict-> residual chain). Each refinement pass
//     is then a read-only scan extracting bit n from a packed uint64 per
//     entry, batched into 64-bit words through BitWriter's word path. The
//     budgeted mode (and the out-of-range >50-plane case) keeps the
//     reference's per-bit residual walk to stop on the exact budget bit.
//
// tests/test_speck_fast.cpp holds this coder to bit-identical streams and
// equal EncodeStats against encode_reference across shapes and modes.

#include "speck/encoder.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"
#include "speck/settree.h"

namespace sperr::speck {

namespace {

class FastEncoder {
 public:
  FastEncoder(const double* coeffs, Dims dims, double q, size_t budget_bits)
      : coeffs_(coeffs), dims_(dims), q_(q), budget_(budget_bits) {
    const size_t n = dims.total();
    // One linear scan: per-coefficient significance planes (consumed by the
    // tree fill below) and the squared-magnitude sum for estimated_rmse().
    // Same expressions in the same order as the reference, so the
    // accumulated double is bit-identical.
    coeff_planes_.resize(n);
    int16_t max_plane = kDeadPlane;
    for (size_t i = 0; i < n; ++i) {
      const double m = std::fabs(coeffs[i]) / q;
      mag_sq_sum_ += m * m;
      const int16_t p = plane_of(m);
      coeff_planes_[i] = p;
      if (p > max_plane) max_plane = p;
    }
    // plane_of(max m) == max plane_of(m): same top plane as the reference's
    // `largest n with 2^n < max magnitude` search.
    n_max_ = max_plane;

    if (n_max_ >= 0) {
      tree_.build(dims);
      tree_.fill_planes(coeff_planes_.data());
      std::vector<int16_t>().swap(coeff_planes_);  // leaf planes live in the tree now
    }

    // The packed-integer refinement path holds a coefficient's whole bit
    // sequence (up to n_max_ bits) in a uint64 and reconstructs recon/
    // residual in closed form; both need the refined span to stay well
    // inside double precision. 50 planes covers every real mode (fixed-rate
    // picks q = max*2^-50); beyond that, and in budgeted mode (which must
    // stop on an exact mid-pass bit), use the reference's residual walk.
    int_path_ = budget_ == 0 && n_max_ <= 50;
  }

  [[nodiscard]] double estimated_rmse() const {
    double sq = mag_sq_sum_;  // start with everything in the dead zone...
    auto account = [&](double m, double recon) {
      const double e = m - recon;
      sq += e * e - m * m;  // ...and swap coded ones to their true error
    };
    if (int_path_) {
      // Unbudgeted runs refine every LSP entry down to plane 0 and finish
      // with an empty LNSP, so every recon has the closed form below.
      for (size_t j = 0; j < lsp_idx_.size(); ++j) {
        const double m = mag(lsp_idx_[j]);
        account(m, final_recon(m, lsp_v_[j]));
      }
    } else {
      for (const auto& p : lsp_) account(mag(p.idx), p.recon);
      for (const auto& p : lnsp_) account(mag(p.idx), p.recon);
    }
    const size_t n = dims_.total();
    return n ? q_ * std::sqrt(std::max(sq, 0.0) / double(n)) : 0.0;
  }

  void export_recon(std::vector<double>& out) const {
    out.assign(dims_.total(), 0.0);
    auto emit = [&](uint64_t idx, double recon) {
      out[idx] = (std::signbit(coeffs_[idx]) ? -recon : recon) * q_;
    };
    if (int_path_) {
      for (size_t j = 0; j < lsp_idx_.size(); ++j)
        emit(lsp_idx_[j], final_recon(mag(lsp_idx_[j]), lsp_v_[j]));
    } else {
      for (const auto& p : lsp_) emit(p.idx, p.recon);
      for (const auto& p : lnsp_) emit(p.idx, p.recon);
    }
  }

  std::vector<uint8_t> run(EncodeStats* stats) {
    if (n_max_ >= 0) {
      lis_.resize(max_depth(dims_) + 1);
      lis_[0].push_back(0);  // root node id

      for (int32_t n = n_max_; n >= 0 && !budget_hit_; --n) {
        const double thrd = std::ldexp(1.0, n);
        sorting_pass(n, thrd);
        if (budget_hit_) break;
        refinement_pass(n, thrd);
      }
    }

    Header hdr;
    hdr.q = q_;
    hdr.n_max = n_max_;
    hdr.nbits = bw_.bit_count();
    if (stats) {
      stats->payload_bits = bw_.bit_count();
      stats->planes_coded = planes_;
      stats->significant_count = int_path_ ? lsp_idx_.size() + lnsp_idx_.size()
                                          : lsp_.size() + lnsp_.size();
      stats->estimated_coeff_rmse = estimated_rmse();
    }

    std::vector<uint8_t> out;
    out.reserve(Header::kBytes + bw_.byte_count());
    hdr.serialize(out);
    const auto payload = bw_.take();
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  }

 private:
  struct SigEntry {
    uint64_t idx;
    double residual;  ///< remaining magnitude to refine away
    double recon;     ///< decoder-equivalent reconstruction (scaled units)
  };

  /// Within-pass descent frame: a significant internal node whose children
  /// are being examined. `next` is the child cursor, `any_sig` feeds the
  /// deducible-last-child rule.
  struct Frame {
    uint32_t node;
    uint8_t next;
    bool any_sig;
  };

  [[nodiscard]] double mag(uint64_t idx) const {
    return std::fabs(coeffs_[idx]) / q_;
  }

  void put(bool bit) {
    bw_.put(bit);
    if (budget_ && bw_.bit_count() >= budget_) budget_hit_ = true;
  }

  void sorting_pass(int32_t n, double thrd) {
    ++planes_;
    // Deepest (smallest) sets first; children spawned by descents land in
    // deeper buckets that were already swept, so every set is examined
    // exactly once per plane — the reference's order.
    for (size_t d = lis_.size(); d-- > 0;) {
      pending_.clear();
      pending_.swap(lis_[d]);
      for (uint32_t id : pending_) {
        process_entry(id, uint32_t(d), n, thrd);
        if (budget_hit_) return;
      }
    }
  }

  /// Examine one LIS entry: emit its significance bit, then — when
  /// significant — run the reference's recursive descent iteratively, in
  /// identical DFS order with the identical deducible-significance rule.
  void process_entry(uint32_t id, uint32_t depth, int32_t n, double thrd) {
    const bool sig = tree_.plane(id) >= n;
    put(sig);
    if (budget_hit_) return;
    if (!sig) {
      lis_[depth].push_back(id);
      return;
    }
    if (tree_.is_leaf(id)) {
      found_significant(tree_.coeff_index(id), thrd);
      return;
    }
    frames_.clear();
    frames_.push_back({id, 0, false});
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      const uint32_t nc = tree_.child_count(f.node);
      if (f.next == nc) {
        frames_.pop_back();
        continue;
      }
      const uint32_t child = tree_.first_child(f.node) + f.next;
      const bool last = ++f.next == nc;
      // Last child of a parent with no significant sibling must itself be
      // significant: no bit (encoder and decoder both deduce it).
      const bool deducible = last && !f.any_sig;
      bool csig = true;
      if (!deducible) {
        csig = tree_.plane(child) >= n;
        put(csig);
        if (budget_hit_) return;
      }
      f.any_sig |= csig;
      if (!csig) {
        // Child depth = entry depth + descent depth (frames_ holds its
        // ancestors up to and including its parent).
        lis_[depth + frames_.size()].push_back(child);
        continue;
      }
      if (tree_.is_leaf(child)) {
        found_significant(tree_.coeff_index(child), thrd);
        if (budget_hit_) return;
        continue;
      }
      frames_.push_back({child, 0, false});
    }
  }

  /// A coefficient turning significant at plane p has magnitude
  /// m in (2^p, 2^(p+1)], and the reference's refinement chain walks
  /// r = m - 2^p down the planes emitting `r > 2^n` and subtracting on 1.
  /// Every subtraction is exact (Sterbenz), so the emitted bits at planes
  /// p-1..0 are exactly the binary digits of ceil(r0) - 1 with r0 = m - 2^p:
  /// for r0 = I + f (integer I, fraction f > 0) strict > reads digit n of I;
  /// for integral r0 = I the strict inequality shifts everything to I - 1.
  /// That integer is captured once here; refinement passes just index it.
  void found_significant(uint64_t idx, double thrd) {
    put(std::signbit(coeffs_[idx]));
    if (budget_hit_) return;  // sign bit emitted, entry dropped — as reference
    if (int_path_) {
      const double r0 = mag(idx) - thrd;  // exact: m in (thrd, 2*thrd]
      lnsp_idx_.push_back(uint32_t(idx));
      lnsp_v_.push_back(uint64_t(std::ceil(r0)) - 1);
    } else {
      lnsp_.push_back({idx, mag(idx), 1.5 * thrd});
    }
  }

  /// Closed form of the reference's recon accumulation for a fully refined
  /// entry: subtracted total 2^p + v, plus half the final interval (plane 0
  /// => 0.5). Exact for spans <= 50 planes, hence bit-identical.
  [[nodiscard]] double final_recon(double m, uint64_t v) const {
    const int16_t p = plane_of(m);
    return double((uint64_t(1) << p) + v) + 0.5;
  }

  void refinement_pass(int32_t n, double thrd) {
    if (int_path_) {
      // Read-only scan: bit n of each entry's precomputed sequence, batched
      // into words. No per-entry state mutates until the final closed-form
      // reconstruction.
      uint64_t word = 0;
      unsigned fill = 0;
      for (const uint64_t v : lsp_v_) {
        word |= ((v >> n) & 1u) << fill;
        if (++fill == 64) {
          bw_.put_word(word);
          word = 0;
          fill = 0;
        }
      }
      if (fill) bw_.put_bits(word, fill);
      lsp_idx_.insert(lsp_idx_.end(), lnsp_idx_.begin(), lnsp_idx_.end());
      lsp_v_.insert(lsp_v_.end(), lnsp_v_.begin(), lnsp_v_.end());
      lnsp_idx_.clear();
      lnsp_v_.clear();
      return;
    }
    if (budget_ == 0) {
      // >50-plane fallback: the reference's residual walk with batched
      // emission through the word-at-a-time path.
      uint64_t word = 0;
      unsigned fill = 0;
      for (auto& p : lsp_) {
        const bool bit = p.residual > thrd;
        if (bit) p.residual -= thrd;
        p.recon += bit ? thrd / 2.0 : -thrd / 2.0;
        word |= uint64_t(bit) << fill;
        if (++fill == 64) {
          bw_.put_word(word);
          word = 0;
          fill = 0;
        }
      }
      if (fill) bw_.put_bits(word, fill);
    } else {
      // Budgeted: per-bit loop so encoding stops on the exact budget bit,
      // with that bit's state update skipped — as the reference does.
      for (auto& p : lsp_) {
        const bool bit = p.residual > thrd;
        put(bit);
        if (budget_hit_) return;
        if (bit) p.residual -= thrd;
        p.recon += bit ? thrd / 2.0 : -thrd / 2.0;
      }
    }
    for (auto& p : lnsp_) p.residual -= thrd;
    lsp_.insert(lsp_.end(), lnsp_.begin(), lnsp_.end());
    lnsp_.clear();
  }

  const double* coeffs_;
  Dims dims_;
  double q_;
  size_t budget_;
  bool budget_hit_ = false;

  std::vector<int16_t> coeff_planes_;  ///< per-coefficient planes (build-time only)
  double mag_sq_sum_ = 0.0;
  int32_t n_max_ = -1;
  size_t planes_ = 0;

  SetTree tree_;
  std::vector<std::vector<uint32_t>> lis_;  ///< packed node ids, bucketed by depth
  std::vector<uint32_t> pending_;           ///< per-bucket scratch (capacity reused)
  std::vector<Frame> frames_;               ///< iterative descent stack

  bool int_path_ = false;  ///< packed-integer refinement (see constructor)
  std::vector<uint32_t> lsp_idx_;  ///< int path: coefficient indices, LSP order
  std::vector<uint64_t> lsp_v_;    ///< int path: packed refinement bit sequences
  std::vector<uint32_t> lnsp_idx_;
  std::vector<uint64_t> lnsp_v_;
  std::vector<SigEntry> lsp_;  ///< fallback paths: residual-walk entries
  std::vector<SigEntry> lnsp_;
  BitWriter bw_;
};

}  // namespace

std::vector<uint8_t> encode(const double* coeffs,
                            Dims dims,
                            double q,
                            size_t budget_bits,
                            EncodeStats* stats,
                            std::vector<double>* recon_out) {
  // Node ids in the flattened tree are uint32; beyond this (far above any
  // real chunk) fall back to the reference coder.
  if (dims.total() >= (size_t(1) << 31))
    return encode_reference(coeffs, dims, q, budget_bits, stats, recon_out);
  FastEncoder enc(coeffs, dims, q, budget_bits);
  auto stream = enc.run(stats);
  if (recon_out) enc.export_recon(*recon_out);
  return stream;
}

}  // namespace sperr::speck
