// Production SPECK encoder: data-parallel sweep rewrite of the reference
// coder (reference.cpp), emitting bit-identical streams.
//
//   * The set hierarchy and every set's maximum significance plane are
//     precomputed once into the contiguous SetTree (settree.h) — the
//     per-plane significance test collapses from a lazy strided box scan
//     plus a double compare to one int8 load and compare.
//   * Worklists are stable SoA buckets: an entry's set id and its cached
//     max plane are appended once and never copied again; a descended
//     entry is tombstoned (kConsumed) in place. The per-plane sorting
//     sweep packs each bucket's significance and liveness tests into
//     64-wide words (SSE2 byte compares where available, a scalar
//     compare loop otherwise), counts insignificant-set runs with
//     popcounts over those words, and emits each run as one put_zeros —
//     the memory traffic per plane is one byte per listed set instead of
//     a worklist copy. Only significant sets enter the frame-stack
//     descent (the reference's recursion order, preserving the
//     deducible-significance rule bit for bit).
//   * Refinement bits are transposed at discovery: when a coefficient
//     turns significant at plane p, its whole future refinement sequence
//     is known (one integer — see sweep_found_significant for the
//     derivation from the reference's strict-> residual chain), and its
//     bits are appended to per-plane bit buffers right there. A
//     refinement pass is then a single word-batched append of the
//     prebuilt buffer for that plane — it never rescans the LSP.
//   * Deterministic intra-chunk parallelism (threads > 1): each bucket's
//     entries are partitioned into fixed, word-aligned contiguous lanes;
//     every lane sweeps its slice into private bit/arrival/LNSP/refinement
//     buffers, and the per-lane outputs merge in lane order. Lane
//     concatenation reproduces the serial entry order exactly, so the
//     stream is byte-identical at every thread count. (Safe because a
//     descent from bucket d only spawns entries for strictly deeper
//     buckets, never for the bucket being swept.)
//
// The budgeted mode (which must stop on the exact budget bit) and the
// >50-plane fallback keep the reference's serial per-bit walk. Timing of
// each plane's sorting / significance-scan / refinement phases is recorded
// into EncodeStats::passes for `bench_micro --speck_json`.
//
// tests/test_speck_fast.cpp holds this coder to bit-identical streams and
// equal EncodeStats against encode_reference across shapes, modes, and
// 1/2/4/8 intra-chunk threads.

#include "speck/encoder.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <memory>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/bitset.h"
#include "common/bitstream.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "speck/settree.h"

namespace sperr::speck {

namespace {

/// Buckets below this size are swept serially even in parallel mode: the
/// fork-join dispatch would cost more than the sweep. The output is
/// invariant to this threshold — lane merge order equals serial order — so
/// it is a pure tuning knob.
constexpr size_t kParallelSortGrain = size_t(1) << 12;

/// Tombstone plane for a bucket entry whose set has descended. Strictly
/// below every real cached plane (int path planes are in [-1, 50]), so a
/// consumed entry can never test significant.
constexpr int8_t kConsumed = -128;

class FastEncoder {
 public:
  FastEncoder(const double* coeffs, Dims dims, double q, size_t budget_bits,
              int threads)
      : coeffs_(coeffs), dims_(dims), q_(q), budget_(budget_bits) {
    const size_t n = dims.total();
    // One linear scan: per-coefficient significance planes (consumed by the
    // tree fill below) and the squared-magnitude sum for estimated_rmse().
    // Same expressions in the same order as the reference, so the
    // accumulated double is bit-identical. Stays serial: double addition is
    // not associative and the estimate must match the reference exactly.
    coeff_planes_.resize(n);
    int16_t max_plane = kDeadPlane;
    for (size_t i = 0; i < n; ++i) {
      const double m = std::fabs(coeffs[i]) / q;
      mag_sq_sum_ += m * m;
      const int16_t p = plane_of(m);
      coeff_planes_[i] = p;
      if (p > max_plane) max_plane = p;
    }
    // plane_of(max m) == max plane_of(m): same top plane as the reference's
    // `largest n with 2^n < max magnitude` search.
    n_max_ = max_plane;

    if (n_max_ >= 0) {
      tree_.build(dims);
      tree_.fill_planes(coeff_planes_.data());
      std::vector<int16_t>().swap(coeff_planes_);  // leaf planes live in the tree now
    }

    // The packed-integer refinement path holds a coefficient's whole bit
    // sequence (up to n_max_ bits) in a uint64 and reconstructs recon/
    // residual in closed form; both need the refined span to stay well
    // inside double precision. 50 planes covers every real mode (fixed-rate
    // picks q = max*2^-50); beyond that, and in budgeted mode (which must
    // stop on an exact mid-pass bit), use the reference's residual walk.
    int_path_ = budget_ == 0 && n_max_ <= 50;
    // The sweep engine (int path) is the only one with parallel lanes; the
    // serial fallbacks are inherently order-dependent.
    threads_ = int_path_ ? resolve_thread_count(threads) : 1;
  }

  [[nodiscard]] double estimated_rmse() const {
    double sq = mag_sq_sum_;  // start with everything in the dead zone...
    auto account = [&](double m, double recon) {
      const double e = m - recon;
      sq += e * e - m * m;  // ...and swap coded ones to their true error
    };
    if (int_path_) {
      // Unbudgeted runs refine every LSP entry down to plane 0 and finish
      // with an empty LNSP, so every recon has the closed form below.
      for (size_t j = 0; j < lsp_idx_.size(); ++j) {
        const double m = mag(lsp_idx_[j]);
        account(m, final_recon(m, lsp_v_[j]));
      }
    } else {
      for (const auto& p : lsp_) account(mag(p.idx), p.recon);
      for (const auto& p : lnsp_) account(mag(p.idx), p.recon);
    }
    const size_t n = dims_.total();
    return n ? q_ * std::sqrt(std::max(sq, 0.0) / double(n)) : 0.0;
  }

  void export_recon(std::vector<double>& out) const {
    out.assign(dims_.total(), 0.0);
    auto emit = [&](uint64_t idx, double recon) {
      out[idx] = (std::signbit(coeffs_[idx]) ? -recon : recon) * q_;
    };
    if (int_path_) {
      for (size_t j = 0; j < lsp_idx_.size(); ++j)
        emit(lsp_idx_[j], final_recon(mag(lsp_idx_[j]), lsp_v_[j]));
    } else {
      for (const auto& p : lsp_) emit(p.idx, p.recon);
      for (const auto& p : lnsp_) emit(p.idx, p.recon);
    }
  }

  std::vector<uint8_t> run(EncodeStats* stats) {
    if (n_max_ >= 0) {
      if (int_path_) {
        buckets_.resize(max_depth(dims_) + 1);
        buckets_[0].push(0, int8_t(tree_.plane(0)));
        run_sweeps();
      } else {
        lis_.resize(max_depth(dims_) + 1);
        lis_[0].push_back({0, tree_.plane(0)});  // root node
        run_legacy();
      }
    }

    Header hdr;
    hdr.q = q_;
    hdr.n_max = n_max_;
    const size_t nbits = int_path_ ? wbw_.bit_count() : bw_.bit_count();
    hdr.nbits = nbits;
    if (stats) {
      stats->payload_bits = nbits;
      stats->planes_coded = planes_;
      stats->significant_count =
          int_path_ ? lsp_idx_.size() : lsp_.size() + lnsp_.size();
      stats->estimated_coeff_rmse = estimated_rmse();
      stats->passes = std::move(pass_times_);
      stats->threads_used = threads_;
    }

    std::vector<uint8_t> out;
    out.reserve(Header::kBytes + (nbits + 7) / 8);
    hdr.serialize(out);
    if (int_path_) {
      const auto& payload = wbw_.finish();
      out.insert(out.end(), payload.begin(), payload.end());
    } else {
      const auto payload = bw_.take();
      out.insert(out.end(), payload.begin(), payload.end());
    }
    return out;
  }

 private:
  struct SigEntry {
    uint64_t idx;
    double residual;  ///< remaining magnitude to refine away
    double recon;     ///< decoder-equivalent reconstruction (scaled units)
  };

  /// One legacy-engine LIS entry (budgeted / >50-plane modes). The set's
  /// max plane never changes, so it is cached at listing time.
  struct LisEntry {
    uint32_t id;
    int32_t plane;  ///< == tree_.plane(id), cached at listing time
  };

  /// A sweep-engine worklist: entries append once and are tombstoned in
  /// place when their set descends — never copied, unlike a re-listed LIS.
  /// `planes` caches each set's max plane (int path planes fit int8), so a
  /// sweep's significance tests read one contiguous byte per entry.
  struct Bucket {
    std::vector<uint32_t> ids;
    std::vector<int8_t> planes;

    void push(uint32_t id, int8_t plane) {
      ids.push_back(id);
      planes.push_back(plane);
    }
  };

  /// Within-pass descent frame: a significant internal node whose children
  /// are being examined. `next` is the child cursor, `any_sig` feeds the
  /// deducible-last-child rule.
  struct Frame {
    uint32_t node;
    uint8_t next;
    bool any_sig;
  };

  /// Sweep-engine descent frame: the node's children are scanned once at
  /// frame creation into a significance mask and packed plane bytes
  /// (branchless — see scan_children), so the walk emits sibling runs in
  /// batches instead of testing one child per iteration.
  struct SweepFrame {
    uint32_t node;
    uint8_t nc;
    uint8_t next;     ///< child cursor
    uint8_t mask;     ///< child significance bits at the current plane
    bool any_sig;     ///< a significant child has been coded
    uint64_t planes;  ///< eight packed int8 child planes (for spills)
  };

  /// One sweep lane's output channels. The serial sweep's lane points
  /// straight at the master structures (zero merge cost); parallel lanes
  /// point at private buffers that merge, in lane order, after each bucket.
  struct Lane {
    WordBitWriter* bw = nullptr;
    std::vector<Bucket>* spill = nullptr;  ///< per-depth arrival dest
    std::vector<uint32_t>* lsp_idx = nullptr;
    std::vector<uint64_t>* lsp_v = nullptr;
    std::vector<WordBitWriter>* ref = nullptr;  ///< per-plane refinement bits
    std::vector<SweepFrame> frames;  ///< descent stack (always private)
    WordBitWriter local_bw;
    std::vector<Bucket> local_spill;
    std::vector<uint32_t> local_lsp_idx;
    std::vector<uint64_t> local_lsp_v;
    std::vector<WordBitWriter> local_ref;
    double significance_s = 0.0;  ///< this bucket's packed-scan time
  };

  [[nodiscard]] double mag(uint64_t idx) const {
    return std::fabs(coeffs_[idx]) / q_;
  }

  // --- sweep engine (unbudgeted, <= 50 planes) -----------------------------

  void run_sweeps() {
    // Refinement bits for plane n collect in ref_streams_[n] as coefficients
    // are discovered (planes n_max_-1 .. 0 can receive bits).
    ref_streams_.resize(size_t(n_max_) + 1);
    serial_lane_.bw = &wbw_;
    serial_lane_.spill = &buckets_;
    serial_lane_.lsp_idx = &lsp_idx_;
    serial_lane_.lsp_v = &lsp_v_;
    serial_lane_.ref = &ref_streams_;
    if (threads_ > 1) {
      pool_ = std::make_unique<TaskPool>(threads_);
      lanes_.resize(size_t(threads_));
      for (Lane& ln : lanes_) {
        ln.bw = &ln.local_bw;
        ln.local_spill.resize(buckets_.size());
        ln.spill = &ln.local_spill;
        ln.lsp_idx = &ln.local_lsp_idx;
        ln.lsp_v = &ln.local_lsp_v;
        ln.local_ref.resize(ref_streams_.size());
        ln.ref = &ln.local_ref;
      }
    }

    for (int32_t n = n_max_; n >= 0; --n) {
      const double thrd = std::ldexp(1.0, n);
      PassTiming pt;
      pt.plane = n;
      Timer t;
      const uint64_t b0 = wbw_.bit_count();
      sweep_sorting_pass(n, thrd, pt);
      pt.sorting_s = t.seconds();
      pt.sorting_bits = wbw_.bit_count() - b0;
      t.reset();
      sweep_refinement_pass(n);
      pt.refinement_s = t.seconds();
      pt.refinement_bits = wbw_.bit_count() - b0 - pt.sorting_bits;
      pass_times_.push_back(pt);
    }
  }

  void sweep_sorting_pass(int32_t n, double thrd, PassTiming& pt) {
    ++planes_;
    // Deepest (smallest) sets first; children spawned by descents land in
    // deeper buckets that were already swept, so every set is examined
    // exactly once per plane — the reference's order.
    for (size_t d = buckets_.size(); d-- > 0;) {
      Bucket& bk = buckets_[d];
      const size_t count = bk.ids.size();
      if (count == 0) continue;
      const size_t nwords = (count + 63) / 64;
      sig_.resize_for_overwrite(count);
      live_.resize_for_overwrite(count);

      if (pool_ && count >= kParallelSortGrain) {
        // Word-aligned contiguous lanes: each lane packs and sweeps its own
        // slice (its run scans never read another lane's words or mark
        // another lane's tombstones), then the outputs merge below in lane
        // order == serial entry order.
        const int L = threads_;
        pool_->run([&](int lane) {
          Lane& ln = lanes_[size_t(lane)];
          const LaneRange wr = lane_range(nwords, L, lane);
          const size_t b = wr.begin * 64;
          const size_t e = std::min(wr.end * 64, count);
          if (b >= e) return;
          Timer lt;
          fill_sig_words(bk, n, b, e);
          ln.significance_s = lt.seconds();
          sweep_range(d, n, thrd, b, e, ln);
        });
        for (Lane& ln : lanes_) {
          pt.significance_s += ln.significance_s;  // folded in lane order
          ln.significance_s = 0.0;
          const auto& bits = ln.local_bw.finish();
          wbw_.append_bits(bits.data(), ln.local_bw.bit_count());
          ln.local_bw.clear();
          for (size_t dd = 0; dd < buckets_.size(); ++dd) {
            Bucket& src = ln.local_spill[dd];
            buckets_[dd].ids.insert(buckets_[dd].ids.end(), src.ids.begin(),
                                    src.ids.end());
            buckets_[dd].planes.insert(buckets_[dd].planes.end(),
                                       src.planes.begin(), src.planes.end());
            src.ids.clear();
            src.planes.clear();
          }
          lsp_idx_.insert(lsp_idx_.end(), ln.local_lsp_idx.begin(),
                          ln.local_lsp_idx.end());
          lsp_v_.insert(lsp_v_.end(), ln.local_lsp_v.begin(),
                        ln.local_lsp_v.end());
          ln.local_lsp_idx.clear();
          ln.local_lsp_v.clear();
          for (int32_t b = 0; b < n; ++b) {
            WordBitWriter& src = ln.local_ref[size_t(b)];
            if (src.bit_count()) {
              ref_streams_[size_t(b)].append_bits(src.finish().data(),
                                                  src.bit_count());
              src.clear();
            }
          }
        }
      } else {
        Timer t;
        fill_sig_words(bk, n, 0, count);
        pt.significance_s += t.seconds();
        sweep_range(d, n, thrd, 0, count, serial_lane_);
      }
    }
  }

  /// Pack significance (`plane >= n`) and liveness (`plane != kConsumed`)
  /// of bucket entries [b, e) into sig_'s / live_'s words — one linear pass
  /// over the cached plane bytes. `b` is a multiple of 64; every covered
  /// word is written in full, so no prior clearing is needed
  /// (resize_for_overwrite above).
  void fill_sig_words(const Bucket& bk, int32_t n, size_t b, size_t e) {
    uint64_t* sw = sig_.word_data();
    uint64_t* lw = live_.word_data();
    const int8_t* p = bk.planes.data();
    size_t i = b;
    for (size_t w = b >> 6; i < e; ++w) {
      uint64_t sig = 0, live = 0;
#if defined(__SSE2__)
      if (e - i >= 64) {
        // Four 16-byte compares per word: signed byte cmpgt gives the
        // significance mask (plane >= n <=> plane > n-1; n-1 fits int8 for
        // n in [0, 50]), cmpeq against the tombstone gives ~liveness.
        const __m128i thr = _mm_set1_epi8(int8_t(n - 1));
        const __m128i dead = _mm_set1_epi8(kConsumed);
        for (unsigned g = 0; g < 4; ++g) {
          const __m128i bytes =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i + 16 * g));
          const auto s = unsigned(_mm_movemask_epi8(_mm_cmpgt_epi8(bytes, thr)));
          const auto c = unsigned(_mm_movemask_epi8(_mm_cmpeq_epi8(bytes, dead)));
          sig |= uint64_t(s) << (16 * g);
          live |= uint64_t(~c & 0xffffu) << (16 * g);
        }
        i += 64;
        sw[w] = sig;
        lw[w] = live;
        continue;
      }
#endif
      const size_t lim = std::min(e, i + 64);
      for (unsigned k = 0; i < lim; ++i, ++k) {
        const int8_t pl = p[i];
        sig |= uint64_t(pl >= n) << k;
        live |= uint64_t(pl != kConsumed) << k;
      }
      sw[w] = sig;
      lw[w] = live;
    }
  }

  /// Sweep entries [b, e) of bucket `d`: runs of live insignificant sets
  /// are counted by popcount and emitted as one batched zero run (the sets
  /// themselves stay listed in place — no copy); significant sets emit
  /// their 1-bit, descend, and are tombstoned. `b` is a multiple of 64.
  void sweep_range(size_t d, int32_t n, double thrd, size_t b, size_t e,
                   Lane& lane) {
    Bucket& bk = buckets_[d];
    const uint64_t* sigw = sig_.word_data();
    const uint64_t* livew = live_.word_data();
    size_t zeros = 0;
    for (size_t w = b >> 6; w * 64 < e; ++w) {
      const size_t base = w * 64;
      uint64_t window = ~uint64_t(0);
      if (e - base < 64) window = (uint64_t(1) << (e - base)) - 1;
      uint64_t sig = sigw[w] & window;
      uint64_t live = livew[w] & window;
      while (sig != 0) {
        const unsigned k = unsigned(std::countr_zero(sig));
        const uint64_t below = (uint64_t(1) << k) - 1;
        zeros += size_t(std::popcount(live & below));
        live &= ~below & ~(uint64_t(1) << k);
        sig &= sig - 1;
        if (zeros) {
          lane.bw->put_zeros(zeros);
          zeros = 0;
        }
        lane.bw->put_bits(1, 1);
        const size_t idx = base + k;
        sweep_descend(bk.ids[idx], uint32_t(d), n, thrd, lane);
        bk.planes[idx] = kConsumed;
      }
      zeros += size_t(std::popcount(live));
    }
    if (zeros) lane.bw->put_zeros(zeros);
  }

  /// One branchless pass over a node's children: pack their max planes into
  /// byte lanes of a uint64 (int path planes fit int8) and their
  /// significance tests at plane n into a mask. Replaces the per-child
  /// lazy plane load + compare with eight predictable iterations.
  [[nodiscard]] std::pair<uint64_t, uint32_t> scan_children(uint32_t node,
                                                            int32_t n) const {
    const uint32_t first = tree_.first_child(node);
    const uint32_t nc = tree_.child_count(node);
    uint64_t planes = 0;
    uint32_t mask = 0;
    for (uint32_t i = 0; i < nc; ++i) {
      const int16_t p = tree_.plane(first + i);
      planes |= uint64_t(uint8_t(int8_t(p))) << (8 * i);
      mask |= uint32_t(p >= n) << i;
    }
    return {planes, mask};
  }

  [[nodiscard]] SweepFrame make_frame(uint32_t node, int32_t n) const {
    const auto [planes, mask] = scan_children(node, n);
    return {node, uint8_t(tree_.child_count(node)), 0, uint8_t(mask), false,
            planes};
  }

  /// The reference's recursive descent of a significant set, iteratively,
  /// in identical DFS order with the identical deducible-significance rule —
  /// but emitting sibling bits in batches. The child significance mask is
  /// known at frame creation, so a run of insignificant siblings and the
  /// following significant child's 1-bit collapse into one put_bits (or
  /// put_zeros) call, and the per-child branches on the bit value disappear.
  /// Spilled-set order and the emitted bit sequence are unchanged: bits and
  /// bucket arrivals are separate channels, and each stays in child order.
  void sweep_descend(uint32_t id, uint32_t depth, int32_t n, double thrd,
                     Lane& lane) {
    if (tree_.is_leaf(id)) {
      sweep_found_significant(tree_.coeff_index(id), n, thrd, lane);
      return;
    }
    auto& frames = lane.frames;
    frames.clear();
    frames.push_back(make_frame(id, n));
    while (!frames.empty()) {
      SweepFrame& f = frames.back();
      const uint32_t first = tree_.first_child(f.node);
      const uint32_t rem = uint32_t(f.mask) >> f.next;
      if (rem == 0) {
        // Every remaining child is insignificant: one batched zero run,
        // spill them all, pop. (Cannot be reached with any_sig still false:
        // a significant parent has at least one significant child.)
        const uint32_t cnt = uint32_t(f.nc) - f.next;
        if (cnt) {
          lane.bw->put_zeros(cnt);
          // Child depth = entry depth + descent depth (frames holds the
          // child's ancestors up to and including its parent).
          Bucket& dest = (*lane.spill)[depth + frames.size()];
          for (uint32_t i = f.next; i < f.nc; ++i)
            dest.push(first + i, int8_t(f.planes >> (8 * i)));
        }
        frames.pop_back();
        continue;
      }
      const uint32_t j = f.next + uint32_t(std::countr_zero(rem));
      const uint32_t gap = j - f.next;  // insignificant siblings before j
      if (gap) {
        Bucket& dest = (*lane.spill)[depth + frames.size()];
        for (uint32_t i = f.next; i < j; ++i)
          dest.push(first + i, int8_t(f.planes >> (8 * i)));
      }
      if (j == uint32_t(f.nc) - 1 && !f.any_sig) {
        // Last child of a parent with no significant sibling must itself be
        // significant: no bit (encoder and decoder both deduce it).
        if (gap) lane.bw->put_zeros(gap);
      } else {
        lane.bw->put_bits(uint64_t(1) << gap, gap + 1);
      }
      f.any_sig = true;
      f.next = uint8_t(j + 1);
      const uint32_t child = first + j;
      if (tree_.is_leaf(child)) {
        sweep_found_significant(tree_.coeff_index(child), n, thrd, lane);
        continue;
      }
      frames.push_back(make_frame(child, n));
    }
  }

  /// A coefficient turning significant at plane n has magnitude
  /// m in (2^n, 2^(n+1)], and the reference's refinement chain walks
  /// r = m - 2^n down the planes emitting `r > 2^b` and subtracting on 1.
  /// Every subtraction is exact (Sterbenz), so the emitted bits at planes
  /// n-1..0 are exactly the binary digits of ceil(r0) - 1 with r0 = m - 2^n:
  /// for r0 = I + f (integer I, fraction f > 0) strict > reads digit b of I;
  /// for integral r0 = I the strict inequality shifts everything to I - 1.
  /// That integer is captured once here, and its bits are transposed into
  /// the per-plane refinement streams immediately — refinement passes never
  /// revisit the coefficient.
  void sweep_found_significant(uint32_t idx, int32_t n, double thrd,
                               Lane& lane) {
    const double c = coeffs_[idx];
    lane.bw->put_bits(uint64_t(std::signbit(c)), 1);
    uint64_t v = 0;
    if (n > 0) {  // at plane 0, m in (1, 2] forces v = 0 and no future bits
      const double r0 = std::fabs(c) / q_ - thrd;  // exact: m in (thrd, 2*thrd]
      // ceil(r0) - 1 without libm: r0 > 0, so trunc == floor, and ceil
      // differs from floor + 1 exactly when r0 is integral.
      const uint64_t t = uint64_t(r0);
      v = double(t) == r0 ? t - 1 : t;
      auto& refs = *lane.ref;
      for (int32_t b = n - 1; b >= 0; --b)
        refs[size_t(b)].put_bits((v >> unsigned(b)) & uint64_t(1), 1);
    }
    lane.lsp_idx->push_back(idx);
    lane.lsp_v->push_back(v);
  }

  /// Emit plane n's refinement bits: every entry discovered at a plane
  /// above n already deposited its bit for plane n into ref_streams_[n]
  /// (in LSP discovery order — lane merges preserve it), so the pass is one
  /// word-batched append. Nothing else to do: lsp_idx_/lsp_v_ fill directly
  /// at discovery, and an entry found at plane p never refines at plane p.
  void sweep_refinement_pass(int32_t n) {
    WordBitWriter& rb = ref_streams_[size_t(n)];
    if (rb.bit_count()) {
      wbw_.append_bits(rb.finish().data(), rb.bit_count());
      rb.clear();
    }
  }

  // --- legacy engine (budgeted mode and > 50 planes) ------------------------

  void put(bool bit) {
    bw_.put(bit);
    if (budget_ && bw_.bit_count() >= budget_) budget_hit_ = true;
  }

  void run_legacy() {
    for (int32_t n = n_max_; n >= 0 && !budget_hit_; --n) {
      const double thrd = std::ldexp(1.0, n);
      PassTiming pt;
      pt.plane = n;
      Timer t;
      const uint64_t b0 = bw_.bit_count();
      sorting_pass(n, thrd);
      pt.sorting_s = t.seconds();
      pt.sorting_bits = bw_.bit_count() - b0;
      if (!budget_hit_) {
        t.reset();
        const uint64_t b1 = bw_.bit_count();
        refinement_pass(thrd);
        pt.refinement_s = t.seconds();
        pt.refinement_bits = bw_.bit_count() - b1;
      }
      pass_times_.push_back(pt);
    }
  }

  void sorting_pass(int32_t n, double thrd) {
    ++planes_;
    for (size_t d = lis_.size(); d-- > 0;) {
      pending_.clear();
      pending_.swap(lis_[d]);
      for (const LisEntry& e : pending_) {
        process_entry(e, uint32_t(d), n, thrd);
        if (budget_hit_) return;
      }
    }
  }

  /// Examine one LIS entry: emit its significance bit, then — when
  /// significant — run the reference's recursive descent iteratively, with
  /// the budget checked on every emitted bit.
  void process_entry(LisEntry ent, uint32_t depth, int32_t n, double thrd) {
    const uint32_t id = ent.id;
    const bool sig = ent.plane >= n;
    put(sig);
    if (budget_hit_) return;
    if (!sig) {
      lis_[depth].push_back(ent);
      return;
    }
    if (tree_.is_leaf(id)) {
      found_significant(tree_.coeff_index(id), thrd);
      return;
    }
    frames_.clear();
    frames_.push_back({id, 0, false});
    while (!frames_.empty()) {
      Frame& f = frames_.back();
      const uint32_t nc = tree_.child_count(f.node);
      if (f.next == nc) {
        frames_.pop_back();
        continue;
      }
      const uint32_t child = tree_.first_child(f.node) + f.next;
      const bool last = ++f.next == nc;
      const bool deducible = last && !f.any_sig;
      bool csig = true;
      int32_t cplane = 0;
      if (!deducible) {
        cplane = tree_.plane(child);
        csig = cplane >= n;
        put(csig);
        if (budget_hit_) return;
      }
      f.any_sig |= csig;
      if (!csig) {
        lis_[depth + frames_.size()].push_back({child, cplane});
        continue;
      }
      if (tree_.is_leaf(child)) {
        found_significant(tree_.coeff_index(child), thrd);
        if (budget_hit_) return;
        continue;
      }
      frames_.push_back({child, 0, false});
    }
  }

  void found_significant(uint64_t idx, double thrd) {
    put(std::signbit(coeffs_[idx]));
    if (budget_hit_) return;  // sign bit emitted, entry dropped — as reference
    lnsp_.push_back({idx, mag(idx), 1.5 * thrd});
  }

  /// Closed form of the reference's recon accumulation for a fully refined
  /// entry: subtracted total 2^p + v, plus half the final interval (plane 0
  /// => 0.5). Exact for spans <= 50 planes, hence bit-identical.
  [[nodiscard]] double final_recon(double m, uint64_t v) const {
    const int16_t p = plane_of(m);
    return double((uint64_t(1) << p) + v) + 0.5;
  }

  void refinement_pass(double thrd) {
    if (budget_ == 0) {
      // >50-plane fallback: the reference's residual walk with batched
      // emission through the word-at-a-time path.
      uint64_t word = 0;
      unsigned fill = 0;
      for (auto& p : lsp_) {
        const bool bit = p.residual > thrd;
        if (bit) p.residual -= thrd;
        p.recon += bit ? thrd / 2.0 : -thrd / 2.0;
        word |= uint64_t(bit) << fill;
        if (++fill == 64) {
          bw_.put_word(word);
          word = 0;
          fill = 0;
        }
      }
      if (fill) bw_.put_bits(word, fill);
    } else {
      // Budgeted: per-bit loop so encoding stops on the exact budget bit,
      // with that bit's state update skipped — as the reference does.
      for (auto& p : lsp_) {
        const bool bit = p.residual > thrd;
        put(bit);
        if (budget_hit_) return;
        if (bit) p.residual -= thrd;
        p.recon += bit ? thrd / 2.0 : -thrd / 2.0;
      }
    }
    for (auto& p : lnsp_) p.residual -= thrd;
    lsp_.insert(lsp_.end(), lnsp_.begin(), lnsp_.end());
    lnsp_.clear();
  }

  const double* coeffs_;
  Dims dims_;
  double q_;
  size_t budget_;
  bool budget_hit_ = false;

  std::vector<int16_t> coeff_planes_;  ///< per-coefficient planes (build-time only)
  double mag_sq_sum_ = 0.0;
  int32_t n_max_ = -1;
  size_t planes_ = 0;
  std::vector<PassTiming> pass_times_;

  SetTree tree_;

  bool int_path_ = false;  ///< packed-integer refinement (see constructor)
  int threads_ = 1;
  std::unique_ptr<TaskPool> pool_;  ///< non-null only when threads_ > 1
  Lane serial_lane_;
  std::vector<Lane> lanes_;
  std::vector<Bucket> buckets_;  ///< sweep worklists, bucketed by depth
  PackedBits sig_;   ///< per-bucket packed significance bits (scratch)
  PackedBits live_;  ///< per-bucket packed liveness bits (scratch)
  std::vector<WordBitWriter> ref_streams_;  ///< per-plane refinement bits

  std::vector<std::vector<LisEntry>> lis_;  ///< legacy worklists by depth
  std::vector<LisEntry> pending_;           ///< legacy per-bucket scratch
  std::vector<Frame> frames_;               ///< legacy engine's descent stack

  std::vector<uint32_t> lsp_idx_;  ///< int path: coefficient indices, LSP order
  std::vector<uint64_t> lsp_v_;    ///< int path: packed refinement bit sequences
  std::vector<SigEntry> lsp_;  ///< fallback paths: residual-walk entries
  std::vector<SigEntry> lnsp_;
  WordBitWriter wbw_;  ///< sweep engine's master stream
  BitWriter bw_;       ///< legacy engine's stream
};

}  // namespace

std::vector<uint8_t> encode(const double* coeffs,
                            Dims dims,
                            double q,
                            size_t budget_bits,
                            EncodeStats* stats,
                            std::vector<double>* recon_out,
                            int threads) {
  // Node ids in the flattened tree are uint32; beyond this (far above any
  // real chunk) fall back to the reference coder.
  if (dims.total() >= (size_t(1) << 31))
    return encode_reference(coeffs, dims, q, budget_bits, stats, recon_out);
  FastEncoder enc(coeffs, dims, q, budget_bits, threads);
  auto stream = enc.run(stats);
  if (recon_out) enc.export_recon(*recon_out);
  return stream;
}

}  // namespace sperr::speck
