#pragma once

// Shared SPECK machinery: the rectangular set ("box") that set partitioning
// operates on, the deterministic split rule, and the stream header. Encoder
// and decoder must perform bit-for-bit identical set traversals, so all
// traversal-order-defining logic lives here.

#include <cstdint>

#include "common/byteio.h"
#include "common/types.h"

namespace sperr::speck {

/// An axis-aligned box of coefficients within the (transformed) grid.
struct Box {
  uint32_t x = 0, y = 0, z = 0;     ///< origin
  uint32_t nx = 1, ny = 1, nz = 1;  ///< extents (>= 1)

  [[nodiscard]] uint64_t count() const { return uint64_t(nx) * ny * nz; }
  [[nodiscard]] bool is_single() const { return nx == 1 && ny == 1 && nz == 1; }
};

/// Split a box in half along every axis with extent > 1 (up to 8 children).
/// The first half along each axis gets ceil(n/2) samples, which aligns the
/// top-level split with the approximation|detail boundary of the
/// de-interleaved wavelet layout. Children are emitted x-fastest so both
/// encoder and decoder visit them in the same order. Returns child count.
inline int split_box(const Box& b, Box out[8]) {
  const uint32_t hx = (b.nx + 1) / 2, hy = (b.ny + 1) / 2, hz = (b.nz + 1) / 2;
  const int px = b.nx > 1 ? 2 : 1, py = b.ny > 1 ? 2 : 1, pz = b.nz > 1 ? 2 : 1;
  int n = 0;
  for (int zp = 0; zp < pz; ++zp)
    for (int yp = 0; yp < py; ++yp)
      for (int xp = 0; xp < px; ++xp) {
        Box c;
        c.x = b.x + (xp ? hx : 0);
        c.nx = xp ? b.nx - hx : hx;
        c.y = b.y + (yp ? hy : 0);
        c.ny = yp ? b.ny - hy : hy;
        c.z = b.z + (zp ? hz : 0);
        c.nz = zp ? b.nz - hz : hz;
        out[n++] = c;
      }
  return n;
}

/// Maximum split depth a grid can reach (buckets for the LIS).
inline uint32_t max_depth(Dims dims) {
  uint32_t m = 1;
  size_t ext = dims.x;
  if (dims.y > ext) ext = dims.y;
  if (dims.z > ext) ext = dims.z;
  while ((size_t(1) << m) < ext) ++m;
  return m + 2;  // headroom for ceil-halving of odd extents
}

/// SPECK stream header, prepended to the bit payload.
struct Header {
  static constexpr uint16_t kMagic = 0x5343;  // "SC"
  static constexpr size_t kBytes = 2 + 8 + 4 + 8;

  double q = 1.0;       ///< finest quantization step (coefficients scale by 1/q)
  int32_t n_max = -1;   ///< top bitplane exponent; -1 => nothing significant
  uint64_t nbits = 0;   ///< exact payload length in bits (embedded truncation point)

  void serialize(std::vector<uint8_t>& out) const {
    put_u16(out, kMagic);
    put_f64(out, q);
    put_u32(out, uint32_t(n_max));
    put_u64(out, nbits);
  }

  [[nodiscard]] Status deserialize(ByteReader& br) {
    if (br.u16() != kMagic) return Status::corrupt_stream;
    q = br.f64();
    n_max = int32_t(br.u32());
    nbits = br.u64();
    if (!br.ok()) return Status::truncated_stream;
    if (!(q > 0.0)) return Status::corrupt_stream;
    return Status::ok;
  }
};

}  // namespace sperr::speck
